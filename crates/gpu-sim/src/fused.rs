//! Fused sparse-attention kernel: SDDMM → scaled softmax → SpMM in one
//! launch.
//!
//! The three-launch attention pipeline writes the raw scores to global
//! memory, streams them back through the softmax (three read passes plus a
//! write), and streams the probabilities back in again for the context
//! SpMM — all over the same CSR topology, all `Streaming` traffic the cache
//! model sends straight to DRAM. This kernel keeps one mask row resident in
//! shared memory across the three stages: one warp owns one row, stages the
//! scores in the block's smem arena, normalizes them in place, and
//! accumulates the context tile without the intermediate matrices ever
//! existing in global memory. The mask indices are read once instead of
//! twice, and two launch overheads disappear.
//!
//! **Bit-exactness contract.** The functional body performs, per output
//! element, the *identical* chain of `mul_add`s the three separate kernels
//! perform (`lanes::fma_dot4`/`fma_dot` for the scores in SDDMM strip
//! order, the exact `SparseSoftmaxKernel` max/exp/normalize body including
//! its ±inf branches and denominator clamp, `lanes::fma_axpy` over the V
//! row tiles with the SpMM's zero-probability skip). Intermediate values
//! round-trip through `T` exactly where the unfused pipeline stores and
//! reloads them. The `fusion_equivalence` suite pins bitwise equality
//! against the three-launch reference.
//!
//! The planner (`sputnik::plan`) only builds this kernel after proving the
//! per-row staging footprint fits the device's shared memory; constructed
//! for an oversized topology, the static auditor refutes `SharedCapacity`
//! and the launch is rejected before simulation.

use crate::fingerprint::Fingerprint;
use crate::util::SyncUnsafeSlice;
use crate::{
    lanes, memory, AccessBound, AccessPattern, AlignmentFacts, BarrierFacts, BlockContext,
    BufferBound, BufferId, BufferSpec, Dim3, Kernel, StageBound, StaticFacts,
};
use sparse::{CsrMatrix, Matrix, Scalar};

pub const BUF_Q: BufferId = BufferId(0);
pub const BUF_K: BufferId = BufferId(1);
pub const BUF_V: BufferId = BufferId(2);
pub const BUF_MASK_OFFSETS: BufferId = BufferId(3);
pub const BUF_MASK_INDICES: BufferId = BufferId(4);
pub const BUF_OUT: BufferId = BufferId(5);

/// Per-row shared-memory staging footprint: the scores row (f32, normalized
/// in place) plus one index strip. This is the quantity the fusion legality
/// rule compares against the device's smem capacity.
pub fn staging_bytes(max_row_len: usize, sddmm_tile: usize) -> u64 {
    max_row_len as u64 * 4 + sddmm_tile as u64 * 4
}

/// The fused `SDDMM → scale → softmax → SpMM` attention kernel. One warp
/// per block, one mask row per warp; `grid.x` spans the rows.
pub struct SddmmSoftmaxSpmmKernel<'a, T: Scalar> {
    q: Option<&'a Matrix<T>>,
    kmat: Option<&'a Matrix<T>>,
    v: Option<&'a Matrix<T>>,
    mask: &'a CsrMatrix<T>,
    out: Option<SyncUnsafeSlice<'a, T>>,
    /// Logit scale applied inside the softmax stage (attention's
    /// `1/sqrt(d)`), metered as an explicit multiply pass.
    scale: f32,
    /// Inner (dot-product) dimension shared by Q and K rows.
    k: usize,
    /// Context width (= V columns).
    n: usize,
    /// Score-strip width: the SDDMM stage processes the row's nonzeros in
    /// strips of this many outputs (mirrors `SddmmConfig::block_items_x`).
    sddmm_tile: usize,
    /// Context-tile width (mirrors `SpmmConfig::block_items_x`).
    spmm_tile: usize,
    /// Plan-shape tag baked into the launch name (and therefore the
    /// [`crate::LaunchKey`]): fusing a different op chain or different
    /// stage tiles must never alias a cached launch.
    plan_tag: String,
    max_row_len: usize,
}

impl<'a, T: Scalar> SddmmSoftmaxSpmmKernel<'a, T> {
    /// Functional construction. `q` is `rows x k`, `kmat` is `cols x k`
    /// (the SDDMM's native transposed-RHS form), `v` is `cols x n`, `out`
    /// is the dense `rows x n` context buffer.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        q: &'a Matrix<T>,
        kmat: &'a Matrix<T>,
        v: &'a Matrix<T>,
        mask: &'a CsrMatrix<T>,
        out: &'a mut [T],
        scale: f32,
        sddmm_tile: usize,
        spmm_tile: usize,
        plan_tag: String,
    ) -> Self {
        assert_eq!(q.rows(), mask.rows(), "Q rows must match mask rows");
        assert_eq!(kmat.rows(), mask.cols(), "K rows must match mask cols");
        assert_eq!(q.cols(), kmat.cols(), "Q/K inner dimensions must agree");
        assert_eq!(v.rows(), mask.cols(), "V rows must match mask cols");
        assert_eq!(out.len(), mask.rows() * v.cols(), "out must be rows x n");
        Self {
            q: Some(q),
            kmat: Some(kmat),
            v: Some(v),
            mask,
            out: Some(SyncUnsafeSlice::new(out)),
            scale,
            k: q.cols(),
            n: v.cols(),
            sddmm_tile: sddmm_tile.max(1),
            spmm_tile: spmm_tile.max(1),
            plan_tag,
            max_row_len: mask.max_row_len(),
        }
    }

    /// Cost-only construction from the mask topology and problem shape.
    pub fn for_profile(
        mask: &'a CsrMatrix<T>,
        k: usize,
        n: usize,
        scale: f32,
        sddmm_tile: usize,
        spmm_tile: usize,
        plan_tag: String,
    ) -> Self {
        Self {
            q: None,
            kmat: None,
            v: None,
            mask,
            out: None,
            scale,
            k,
            n,
            sddmm_tile: sddmm_tile.max(1),
            spmm_tile: spmm_tile.max(1),
            plan_tag,
            max_row_len: mask.max_row_len(),
        }
    }

    /// Q/K vector load width: widest 16-byte vector that divides `k`.
    fn vw(&self) -> u32 {
        let mut vw = 16 / T::BYTES;
        while vw > 1 && !self.k.is_multiple_of(vw as usize) {
            vw /= 2;
        }
        vw
    }
}

impl<T: Scalar> Kernel for SddmmSoftmaxSpmmKernel<'_, T> {
    fn name(&self) -> String {
        format!("fused_sddmm_softmax_spmm_{}_{}", T::TAG, self.plan_tag)
    }

    fn grid(&self) -> Dim3 {
        Dim3::x(self.mask.rows() as u32)
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::x(32)
    }

    fn shared_mem_bytes(&self) -> u32 {
        staging_bytes(self.max_row_len, self.sddmm_tile).min(u32::MAX as u64) as u32
    }

    fn regs_per_thread(&self) -> u32 {
        40 + (self.k as u32 / 32).min(64)
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        let eb = T::BYTES as u64;
        vec![
            BufferSpec {
                id: BUF_Q,
                name: "q",
                footprint_bytes: (self.mask.rows() * self.k) as u64 * eb,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_K,
                name: "k",
                footprint_bytes: (self.mask.cols() * self.k) as u64 * eb,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_V,
                name: "v",
                footprint_bytes: (self.mask.cols() * self.n) as u64 * eb,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_MASK_OFFSETS,
                name: "mask_offsets",
                footprint_bytes: (self.mask.rows() as u64 + 1) * 4,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_MASK_INDICES,
                name: "mask_indices",
                footprint_bytes: self.mask.nnz() as u64 * 4,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_OUT,
                name: "context",
                footprint_bytes: (self.mask.rows() * self.n) as u64 * eb,
                pattern: AccessPattern::Streaming,
            },
        ]
    }

    /// Per-row cost structure: the signature folds everything the trace
    /// depends on — the row's nonzero count (strip structure, softmax and
    /// accumulate passes), the mod-32 address classes of the index strip,
    /// the Q and context rows, and (when row strides are not
    /// sector-multiples) each gathered K/V row's class. Early-exit rows
    /// hash a sentinel.
    fn block_signature(&self, block: Dim3) -> Option<u64> {
        let eb = T::BYTES as u64;
        let row = block.x as usize;
        let mut fp = Fingerprint::new();
        fp.write_u64(row as u64 * 4 % 32);
        let row_start = self.mask.row_offsets()[row] as u64;
        let len = self.mask.row_len(row);
        if len == 0 {
            fp.write_u64(u64::MAX);
            return Some(fp.finish());
        }
        fp.write_u64(len as u64);
        fp.write_u64(row_start * 4 % 32);
        fp.write_u64(row as u64 * self.k as u64 * eb % 32);
        fp.write_u64(row as u64 * self.n as u64 * eb % 32);
        let k_bytes = self.k as u64 * eb;
        let n_bytes = self.n as u64 * eb;
        if k_bytes.is_multiple_of(memory::SECTOR_BYTES)
            && n_bytes.is_multiple_of(memory::SECTOR_BYTES)
        {
            fp.write_u64(0);
        } else {
            let (cols, _) = self.mask.row(row);
            for &j in cols {
                if !k_bytes.is_multiple_of(memory::SECTOR_BYTES) {
                    fp.write_u64(j as u64 * k_bytes % 32);
                }
                if !n_bytes.is_multiple_of(memory::SECTOR_BYTES) {
                    fp.write_u64(j as u64 * n_bytes % 32);
                }
            }
        }
        Some(fp.finish())
    }

    /// Static safety facts.
    ///
    /// Soundness: warp `row` reads Q row `row` (`(row + 1) * k * eb <=
    /// rows * k * eb`), gathers K/V rows `j < mask.cols()` (extents
    /// `cols * k * eb` / `cols * n * eb` by CSR index validity), reads an
    /// 8-byte offset pair ending at `(rows + 1) * 4` and its index slice
    /// ending at `nnz * 4`, and writes context row `row` only. All traced
    /// global accesses are scalar. The block is a single warp, so the
    /// cross-stage staging is consumed warp-synchronously with no barriers,
    /// and the per-epoch staging equals the declared shared memory:
    /// [`staging_bytes`] (scores row + one index strip).
    fn static_facts(&self) -> StaticFacts {
        let eb = T::BYTES as u64;
        StaticFacts {
            bounds: Some(vec![
                BufferBound {
                    slot: BUF_Q.0,
                    bound: AccessBound::Extent((self.mask.rows() * self.k) as u64 * eb),
                },
                BufferBound {
                    slot: BUF_K.0,
                    bound: AccessBound::Extent((self.mask.cols() * self.k) as u64 * eb),
                },
                BufferBound {
                    slot: BUF_V.0,
                    bound: AccessBound::Extent((self.mask.cols() * self.n) as u64 * eb),
                },
                BufferBound {
                    slot: BUF_MASK_OFFSETS.0,
                    bound: AccessBound::Extent((self.mask.rows() as u64 + 1) * 4),
                },
                BufferBound {
                    slot: BUF_MASK_INDICES.0,
                    bound: AccessBound::Extent(self.mask.nnz() as u64 * 4),
                },
                BufferBound {
                    slot: BUF_OUT.0,
                    bound: AccessBound::Extent((self.mask.rows() * self.n) as u64 * eb),
                },
            ]),
            alignment: AlignmentFacts::ScalarOnly,
            barrier: BarrierFacts::WarpSynchronous,
            stage: StageBound::Bytes(staging_bytes(self.max_row_len, self.sddmm_tile)),
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        let eb = T::BYTES;
        let row = block.x as usize;
        ctx.misc(5);
        ctx.ld_global(BUF_MASK_OFFSETS, row as u64 * 4, 2, 1, 4);
        let row_start = self.mask.row_offsets()[row] as usize;
        let len = self.mask.row_len(row);
        if len == 0 {
            return;
        }
        let k = self.k;
        let n = self.n;

        // ---- Cost -----------------------------------------------------
        if ctx.recording() {
            let vw = self.vw();
            // Q row: loaded once per block, reused across every score.
            let q_instrs = memory::vector_instr_count(k as u64, 32, vw);
            ctx.cost.ld_global_instrs += q_instrs;
            ctx.cost.gmem[BUF_Q.0 as usize].ld_sectors +=
                memory::sectors_contiguous((row * k) as u64 * eb as u64, k as u64 * eb as u64);

            // SDDMM stage, per strip: stage the index strip, then one
            // warp-cooperative dot per output (the whole warp reduces each
            // score, as in the unfused kernel's threads_per_output_tile=32
            // form).
            let k_bytes = k as u64 * eb as u64;
            let mut strip_start = 0usize;
            while strip_start < len {
                let s = self.sddmm_tile.min(len - strip_start);
                ctx.ld_global(
                    BUF_MASK_INDICES,
                    (row_start + strip_start) as u64 * 4,
                    s as u32,
                    1,
                    4,
                );
                ctx.st_shared(s as u32, 1, 4, 1);
                ctx.misc(3);
                let groups = s as u64;
                ctx.cost.ld_global_instrs += groups * (k as u64).div_ceil(32 * vw as u64).max(1);
                ctx.cost.fma_instrs += groups * (k as u64).div_ceil(32).max(1);
                ctx.shfl(groups * 5);
                ctx.fp(groups * 5, 0);
                ctx.misc(groups * 3);
                if k_bytes.is_multiple_of(memory::SECTOR_BYTES) {
                    ctx.cost.gmem[BUF_K.0 as usize].ld_sectors +=
                        s as u64 * memory::sectors_contiguous(0, k_bytes);
                } else {
                    let (cols, _) = self.mask.row(row);
                    for &j in &cols[strip_start..strip_start + s] {
                        ctx.cost.gmem[BUF_K.0 as usize].ld_sectors +=
                            memory::sectors_contiguous(j as u64 * k_bytes, k_bytes);
                    }
                }
                ctx.cost.flops += 2 * (s * k) as u64;
                // Scores land in shared memory instead of DRAM.
                ctx.st_shared(s as u32, 1, 4, 1);
                strip_start += s;
            }

            // Softmax stage over the staged row: the three passes of the
            // standalone kernel, reading shared memory instead of global,
            // plus the metered logit-scale multiply.
            let elem_instrs = (len as u64).div_ceil(32);
            ctx.smem_load(3 * elem_instrs, 3 * len as u64 * 4, crate::SmemScope::Warp);
            ctx.fp(elem_instrs, len as u64); // logit scale
            ctx.fp(3 * elem_instrs, 3 * len as u64);
            ctx.shfl(10);
            ctx.fp(10, 10);
            // Probabilities overwrite the staged scores in place.
            ctx.smem_store(elem_instrs, len as u64 * 4, crate::SmemScope::Warp);
            ctx.cost.flops += 4 * len as u64;

            // SpMM stage: gather V rows, accumulate the context row tile by
            // tile; probabilities are re-read from shared memory per tile.
            let n_bytes = n as u64 * eb as u64;
            let mut n_off = 0usize;
            while n_off < n {
                let tile_w = self.spmm_tile.min(n - n_off);
                ctx.smem_load(elem_instrs, len as u64 * 4, crate::SmemScope::Warp);
                let per_col = memory::vector_instr_count(tile_w as u64, 32, vw);
                ctx.cost.ld_global_instrs += len as u64 * per_col;
                if n_bytes.is_multiple_of(memory::SECTOR_BYTES) {
                    ctx.cost.gmem[BUF_V.0 as usize].ld_sectors += len as u64
                        * memory::sectors_contiguous(
                            n_off as u64 * eb as u64,
                            tile_w as u64 * eb as u64,
                        );
                } else {
                    let (cols, _) = self.mask.row(row);
                    for &j in cols {
                        ctx.cost.gmem[BUF_V.0 as usize].ld_sectors += memory::sectors_contiguous(
                            (j as u64 * n as u64 + n_off as u64) * eb as u64,
                            tile_w as u64 * eb as u64,
                        );
                    }
                }
                ctx.cost.fma_instrs += len as u64 * (tile_w as u64).div_ceil(32);
                ctx.misc(len as u64);
                ctx.cost.flops += 2 * (len * tile_w) as u64;
                let out_addr = (row * n + n_off) as u64 * eb as u64;
                ctx.cost.st_global_instrs += memory::vector_instr_count(tile_w as u64, 32, vw);
                ctx.cost.gmem[BUF_OUT.0 as usize].st_sectors +=
                    memory::sectors_contiguous(out_addr, tile_w as u64 * eb as u64);
                n_off += tile_w;
            }
        }

        // ---- Functional ------------------------------------------------
        if let (true, Some(q), Some(kmat), Some(v), Some(out)) = (
            ctx.functional(),
            self.q,
            self.kmat,
            self.v,
            self.out.as_ref(),
        ) {
            let (cols, _) = self.mask.row(row);
            let lrow = &q.as_slice()[row * k..(row + 1) * k];
            let kd = kmat.as_slice();
            let rrow = |j: u32| &kd[j as usize * k..(j as usize + 1) * k];

            // Stage 1 — scores, in the unfused SDDMM's strip-chunked order
            // (quad chains reset at strip boundaries exactly as there).
            // Each score round-trips through T, as the unfused kernel's
            // global store/reload does.
            let mut staged = ctx.scratch_f32(len);
            for (strip, strip_cols) in cols.chunks(self.sddmm_tile).enumerate() {
                let base = strip * self.sddmm_tile;
                let mut quads = strip_cols.chunks_exact(4);
                let mut t = 0;
                for quad in &mut quads {
                    let accs = lanes::fma_dot4(
                        lrow,
                        [rrow(quad[0]), rrow(quad[1]), rrow(quad[2]), rrow(quad[3])],
                        |x| x.to_f32(),
                    );
                    for acc in accs {
                        staged[base + t] = T::from_f32(acc).to_f32();
                        t += 1;
                    }
                }
                for &j in quads.remainder() {
                    staged[base + t] =
                        T::from_f32(lanes::fma_dot(lrow, rrow(j), |x| x.to_f32())).to_f32();
                    t += 1;
                }
            }

            // Stage 2 — the SparseSoftmaxKernel body with the logit scale,
            // normalizing the staged row in place. Probabilities round-trip
            // through T, as the unfused softmax's store + SpMM reload does.
            let scale = self.scale;
            let max = staged
                .iter()
                .map(|&s| s * scale)
                .fold(f32::NEG_INFINITY, f32::max);
            if max == f32::INFINITY {
                let top = staged
                    .iter()
                    .filter(|&&s| s * scale == f32::INFINITY)
                    .count()
                    .max(1) as f32;
                for s in staged.iter_mut() {
                    let p = if *s * scale == f32::INFINITY {
                        1.0 / top
                    } else {
                        0.0
                    };
                    *s = T::from_f32(p).to_f32();
                }
            } else if max == f32::NEG_INFINITY {
                let p = T::from_f32(1.0 / len as f32).to_f32();
                for s in staged.iter_mut() {
                    *s = p;
                }
            } else {
                let mut exps = ctx.scratch_f32(len);
                for (e, &s) in exps.iter_mut().zip(staged.iter()) {
                    *e = (s * scale - max).exp();
                }
                let sum: f32 = exps.iter().sum::<f32>().max(f32::MIN_POSITIVE);
                for (s, &e) in staged.iter_mut().zip(exps.iter()) {
                    *s = T::from_f32(e / sum).to_f32();
                }
            }

            // Stage 3 — the SpmmKernel accumulate body over V row tiles:
            // zero probabilities skipped, left-to-right fma chain per
            // output element.
            let vd = v.as_slice();
            let mut n_off = 0usize;
            while n_off < n {
                let tile_w = self.spmm_tile.min(n - n_off);
                let mut acc = ctx.scratch_f32(tile_w);
                for (t, &j) in cols.iter().enumerate() {
                    let val = staged[t];
                    if val == 0.0 {
                        continue;
                    }
                    let brow = &vd[j as usize * n + n_off..j as usize * n + n_off + tile_w];
                    lanes::fma_axpy(&mut acc, val, brow, |x| x.to_f32());
                }
                for (x, &a) in acc.iter().enumerate() {
                    unsafe { out.write(row * n + n_off + x, T::from_f32(a)) };
                }
                n_off += tile_w;
            }
        }
    }

    fn poison_output(&self, seed: u64) {
        if let Some(out) = self.out.as_ref() {
            let len = out.len();
            if len == 0 {
                return;
            }
            for i in 0..3u64 {
                let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z ^= z >> 31;
                unsafe { out.write(z as usize % len, T::from_f32(f32::NAN)) };
            }
        }
    }
}
