//! Structured launch tracing: a lightweight, always-available event
//! recorder, a Chrome `trace_event` exporter, and a profile report.
//!
//! The simulator's value over hardware counters is visibility (cf. Lew et
//! al., "Analyzing Machine Learning Workloads Using a Detailed GPU
//! Simulator"): every launch already computes instruction counts, DRAM
//! traffic, occupancy, and a pipeline breakdown — this module records *where
//! in a model run* each launch happened so sweeps can be compared across
//! PRs and opened in a timeline viewer.
//!
//! ## Model
//!
//! Events land on **tracks** (one per device/stream, keyed by name). Each
//! track carries a simulated clock, in microseconds, that only launches and
//! replays advance:
//!
//! * [`launch`] — a kernel launch; a duration event carrying the full
//!   [`LaunchStats`]. Advances the track clock by `stats.time_us`.
//! * [`replay`] — replicated work (e.g. the remaining attention heads of a
//!   transformer layer, costed once and multiplied): advances the clock
//!   without re-simulating.
//! * [`begin_span`] / [`end_span`] — a named region (a model layer, a tuning
//!   search). Duration is the simulated time that elapsed on the track while
//!   it was open.
//! * [`instant`] — a point event: cache hit/miss, dispatch-ladder step,
//!   fault injection, sanitizer run.
//!
//! ## Cost when disabled
//!
//! Tracing is **off by default**; every recording entry point is a single
//! relaxed atomic load when disabled, so the launch fast path (`simwall`)
//! pays nothing measurable. Call sites that would `format!` an event name
//! should guard on [`enabled`] first.
//!
//! ## Export
//!
//! [`chrome_trace_json`] serializes a drained event list to Chrome
//! `trace_event` JSON (the vendored serde stub cannot serialize, so the
//! writer is by hand). Load the file in `chrome://tracing` or
//! <https://ui.perfetto.dev>: each track is a named thread row, launches and
//! spans are duration slices, and synthesized counter tracks show occupancy
//! and DRAM bandwidth per launch. [`validate_chrome_trace`] re-parses the
//! output and checks the structural schema; CI runs it on every
//! `trace_model` artifact.

use crate::launch::LaunchStats;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A kernel launch (simulated or replayed from a cache), with its full
    /// statistics. `cached` is `Some(true)` for cache hits, `Some(false)`
    /// for recorded misses, `None` when no cache was consulted.
    Launch {
        stats: Box<LaunchStats>,
        cached: Option<bool>,
    },
    /// A closed span: `dur_us` of simulated time elapsed while it was open.
    Span { dur_us: f64 },
    /// Replicated work advancing the clock without simulation: `count`
    /// repetitions totalling `dur_us`.
    Replay { dur_us: f64, count: u64 },
    /// A point event (cache hit/miss, dispatch rung, fault, sanitizer run).
    Instant,
    /// A named counter sample at the track's current clock — a step on a
    /// Chrome counter (`"ph":"C"`) track. Used for workload-level gauges the
    /// launcher cannot synthesize itself, e.g. the joint-sparsity kernels'
    /// `joint_tiles_skipped` / `joint_tiles_total` skip-rate tracks.
    Counter { value: u64 },
    /// A cross-device interconnect transfer occupying the source device's
    /// track for `dur_us`: `bytes` moved toward `dst`. The exporter
    /// synthesizes an `interconnect_bytes` counter track from these
    /// (bytes in flight at the start, back to zero at the end).
    Transfer {
        dur_us: f64,
        bytes: u64,
        dst: String,
    },
}

/// One recorded event. Timestamps are simulated microseconds on the track's
/// clock, which starts at zero when tracing is enabled.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub name: String,
    /// Category: "launch", "replay", "layer", "tune", "cache", "dispatch",
    /// "fault", "sanitizer", ...
    pub cat: &'static str,
    /// Track (thread row in the viewer): usually the device name.
    pub track: String,
    pub ts_us: f64,
    pub kind: EventKind,
}

impl TraceEvent {
    /// The simulated duration this event occupies on its track.
    pub fn dur_us(&self) -> f64 {
        match &self.kind {
            EventKind::Launch { stats, .. } => stats.time_us,
            EventKind::Span { dur_us }
            | EventKind::Replay { dur_us, .. }
            | EventKind::Transfer { dur_us, .. } => *dur_us,
            EventKind::Instant | EventKind::Counter { .. } => 0.0,
        }
    }
}

struct OpenSpan {
    name: String,
    cat: &'static str,
    track: String,
    start_us: f64,
}

struct Recorder {
    events: Vec<TraceEvent>,
    /// Per-track simulated clocks. Tracks are few; linear scan is fine and
    /// keeps the constructor `const`.
    clocks: Vec<(String, f64)>,
    open: Vec<OpenSpan>,
}

impl Recorder {
    const fn new() -> Self {
        Self {
            events: Vec::new(),
            clocks: Vec::new(),
            open: Vec::new(),
        }
    }

    fn clock(&self, track: &str) -> f64 {
        self.clocks
            .iter()
            .find(|(t, _)| t == track)
            .map_or(0.0, |&(_, c)| c)
    }

    fn advance(&mut self, track: &str, us: f64) {
        if let Some(entry) = self.clocks.iter_mut().find(|(t, _)| t == track) {
            entry.1 += us;
        } else {
            self.clocks.push((track.to_string(), us));
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: Mutex<Recorder> = Mutex::new(Recorder::new());

fn lock() -> MutexGuard<'static, Recorder> {
    // A poisoned mutex only means another thread panicked mid-record; the
    // event list itself is still valid.
    match RECORDER.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Is the recorder on? One relaxed atomic load — the only cost every launch
/// pays when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the recorder on, clearing any previous events, clocks, and open
/// spans. Track clocks restart at zero.
pub fn enable() {
    let mut r = lock();
    r.events.clear();
    r.clocks.clear();
    r.open.clear();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn the recorder off and return everything it captured.
pub fn disable() -> Vec<TraceEvent> {
    ENABLED.store(false, Ordering::SeqCst);
    let mut r = lock();
    r.clocks.clear();
    r.open.clear();
    std::mem::take(&mut r.events)
}

/// Take the captured events without disabling (clocks keep running).
pub fn drain() -> Vec<TraceEvent> {
    std::mem::take(&mut lock().events)
}

/// Current simulated clock of a track, in microseconds.
pub fn clock(track: &str) -> f64 {
    lock().clock(track)
}

/// Record a launch on `track` and advance its clock by `stats.time_us`.
/// Called by the launcher for every simulated launch and every cache hit;
/// model code normally never calls this directly.
pub fn launch(track: &str, stats: &LaunchStats, cached: Option<bool>) {
    if !enabled() {
        return;
    }
    let mut r = lock();
    let ts_us = r.clock(track);
    r.events.push(TraceEvent {
        name: stats.kernel.clone(),
        cat: "launch",
        track: track.to_string(),
        ts_us,
        kind: EventKind::Launch {
            stats: Box::new(stats.clone()),
            cached,
        },
    });
    r.advance(track, stats.time_us);
}

/// Record replicated work: `count` repetitions totalling `dur_us`, costed
/// once and multiplied by the model (e.g. identical transformer layers).
/// Advances the track clock by `dur_us`.
pub fn replay(track: &str, name: &str, dur_us: f64, count: u64) {
    if !enabled() {
        return;
    }
    let mut r = lock();
    let ts_us = r.clock(track);
    r.events.push(TraceEvent {
        name: name.to_string(),
        cat: "replay",
        track: track.to_string(),
        ts_us,
        kind: EventKind::Replay { dur_us, count },
    });
    r.advance(track, dur_us);
}

/// Record a point event at the track's current clock.
pub fn instant(cat: &'static str, track: &str, name: &str) {
    if !enabled() {
        return;
    }
    let mut r = lock();
    let ts_us = r.clock(track);
    r.events.push(TraceEvent {
        name: name.to_string(),
        cat,
        track: track.to_string(),
        ts_us,
        kind: EventKind::Instant,
    });
}

/// Record a counter sample at the track's current clock: a step on a named
/// Chrome counter track. The exporter emits it as a `"ph":"C"` event whose
/// `args` carry `{ "value": <value> }`. Does not advance the clock — pair it
/// with the launches whose work it annotates.
pub fn counter(cat: &'static str, track: &str, name: &str, value: u64) {
    if !enabled() {
        return;
    }
    let mut r = lock();
    let ts_us = r.clock(track);
    r.events.push(TraceEvent {
        name: name.to_string(),
        cat,
        track: track.to_string(),
        ts_us,
        kind: EventKind::Counter { value },
    });
}

/// Record an interconnect transfer on the source device's track: `bytes`
/// moved toward `dst` over `dur_us` of simulated time. Advances the source
/// track's clock by `dur_us` (the stream is busy sending). Called by the
/// fleet layer ([`crate::fleet`]) when it resolves a transfer command;
/// model code normally never calls this directly.
pub fn transfer(track: &str, dst: &str, name: &str, bytes: u64, dur_us: f64) {
    if !enabled() {
        return;
    }
    let mut r = lock();
    let ts_us = r.clock(track);
    r.events.push(TraceEvent {
        name: name.to_string(),
        cat: "transfer",
        track: track.to_string(),
        ts_us,
        kind: EventKind::Transfer {
            dur_us,
            bytes,
            dst: dst.to_string(),
        },
    });
    r.advance(track, dur_us);
}

/// Open a named region on `track`. Close it with [`end_span`]; its duration
/// is whatever simulated time launches/replays add while it is open. Spans
/// on different tracks nest independently.
pub fn begin_span(cat: &'static str, track: &str, name: &str) {
    if !enabled() {
        return;
    }
    let mut r = lock();
    let start_us = r.clock(track);
    r.open.push(OpenSpan {
        name: name.to_string(),
        cat,
        track: track.to_string(),
        start_us,
    });
}

/// Close the most recently opened span on `track`, recording it as a
/// duration event. Returns the span's simulated duration (0.0 when tracing
/// is disabled or no span is open on the track).
pub fn end_span(track: &str) -> f64 {
    if !enabled() {
        return 0.0;
    }
    let mut r = lock();
    let Some(pos) = r.open.iter().rposition(|s| s.track == track) else {
        return 0.0;
    };
    let span = r.open.remove(pos);
    let dur_us = r.clock(track) - span.start_us;
    r.events.push(TraceEvent {
        name: span.name,
        cat: span.cat,
        track: span.track,
        ts_us: span.start_us,
        kind: EventKind::Span { dur_us },
    });
    dur_us
}

// ---------------------------------------------------------------------------
// Chrome trace_event export
// ---------------------------------------------------------------------------

/// Escape a string for a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a non-negative f64 for JSON (finite; NaN/inf clamp to 0).
/// Six decimals: timestamps are microseconds, and the validator re-derives
/// per-track clocks from the rounded values — coarser rounding would make
/// back-to-back launches appear to overlap by up to half an LSB.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0".to_string()
    }
}

/// Serialize events to Chrome `trace_event` JSON (the "JSON Object Format":
/// a `traceEvents` array plus `displayTimeUnit`). Tracks become named
/// threads of one `gpu-sim` process; launches/spans/replays are complete
/// (`"ph":"X"`) events, instants are `"ph":"i"`, and per-launch occupancy
/// and DRAM-bandwidth samples are synthesized as counter (`"ph":"C"`)
/// events. Open the result in `chrome://tracing` or Perfetto.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    // Stable tid assignment by first appearance.
    let mut tids: Vec<&str> = Vec::new();
    for ev in events {
        if !tids.iter().any(|t| *t == ev.track) {
            tids.push(&ev.track);
        }
    }
    let tid_of = |track: &str| tids.iter().position(|t| *t == track).unwrap_or(0);

    let mut out = String::with_capacity(events.len() * 160 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"gpu-sim\"}}",
    );
    for (i, track) in tids.iter().enumerate() {
        out.push_str(&format!(
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{i},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(track)
        ));
    }

    for ev in events {
        let tid = tid_of(&ev.track);
        let name = escape_json(&ev.name);
        let ts = json_num(ev.ts_us);
        match &ev.kind {
            EventKind::Launch { stats, cached } => {
                let cached = match cached {
                    Some(true) => "\"hit\"",
                    Some(false) => "\"miss\"",
                    None => "\"none\"",
                };
                out.push_str(&format!(
                    ",\n{{\"name\":\"{name}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\
                     \"dur\":{dur},\"pid\":0,\"tid\":{tid},\"args\":{{\
                     \"blocks\":{},\"waves\":{},\"occupancy\":{},\"balance\":{},\
                     \"instructions\":{},\"flops\":{},\"dram_bytes\":{},\
                     \"tflops\":{},\"dram_gbps\":{},\"bound_by\":\"{}\",\
                     \"cache\":{cached}}}}}",
                    ev.cat,
                    stats.blocks,
                    json_num(stats.waves),
                    json_num(stats.occupancy.fraction),
                    json_num(stats.balance),
                    stats.instructions,
                    stats.flops,
                    stats.dram_bytes,
                    json_num(stats.tflops),
                    json_num(stats.dram_gbps),
                    escape_json(&stats.bound_by),
                    dur = json_num(stats.time_us),
                ));
                // Counter tracks: sample at launch start, return to zero at
                // launch end so the timeline shows per-launch steps.
                let end = json_num(ev.ts_us + stats.time_us);
                out.push_str(&format!(
                    ",\n{{\"name\":\"occupancy\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\
                     \"tid\":{tid},\"args\":{{\"fraction\":{}}}}}",
                    json_num(stats.occupancy.fraction)
                ));
                out.push_str(&format!(
                    ",\n{{\"name\":\"dram_gbps\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\
                     \"tid\":{tid},\"args\":{{\"gbps\":{}}}}}",
                    json_num(stats.dram_gbps)
                ));
                out.push_str(&format!(
                    ",\n{{\"name\":\"occupancy\",\"ph\":\"C\",\"ts\":{end},\"pid\":0,\
                     \"tid\":{tid},\"args\":{{\"fraction\":0}}}}",
                ));
                out.push_str(&format!(
                    ",\n{{\"name\":\"dram_gbps\",\"ph\":\"C\",\"ts\":{end},\"pid\":0,\
                     \"tid\":{tid},\"args\":{{\"gbps\":0}}}}",
                ));
            }
            EventKind::Span { dur_us } => {
                out.push_str(&format!(
                    ",\n{{\"name\":\"{name}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\
                     \"dur\":{},\"pid\":0,\"tid\":{tid},\"args\":{{}}}}",
                    ev.cat,
                    json_num(*dur_us),
                ));
            }
            EventKind::Replay { dur_us, count } => {
                out.push_str(&format!(
                    ",\n{{\"name\":\"{name}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\
                     \"dur\":{},\"pid\":0,\"tid\":{tid},\"args\":{{\"count\":{count}}}}}",
                    ev.cat,
                    json_num(*dur_us),
                ));
            }
            EventKind::Instant => {
                out.push_str(&format!(
                    ",\n{{\"name\":\"{name}\",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{tid},\"s\":\"t\"}}",
                    ev.cat,
                ));
            }
            EventKind::Counter { value } => {
                out.push_str(&format!(
                    ",\n{{\"name\":\"{name}\",\"cat\":\"{}\",\"ph\":\"C\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{tid},\"args\":{{\"value\":{value}}}}}",
                    ev.cat,
                ));
            }
            EventKind::Transfer { dur_us, bytes, dst } => {
                out.push_str(&format!(
                    ",\n{{\"name\":\"{name}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\
                     \"dur\":{},\"pid\":0,\"tid\":{tid},\"args\":{{\
                     \"bytes\":{bytes},\"dst\":\"{}\"}}}}",
                    ev.cat,
                    json_num(*dur_us),
                    escape_json(dst),
                ));
                // Counter track: bytes in flight step up for the duration of
                // the transfer and drop back to zero when it completes.
                let end = json_num(ev.ts_us + dur_us);
                out.push_str(&format!(
                    ",\n{{\"name\":\"interconnect_bytes\",\"ph\":\"C\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{tid},\"args\":{{\"bytes\":{bytes}}}}}",
                ));
                out.push_str(&format!(
                    ",\n{{\"name\":\"interconnect_bytes\",\"ph\":\"C\",\"ts\":{end},\
                     \"pid\":0,\"tid\":{tid},\"args\":{{\"bytes\":0}}}}",
                ));
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

// ---------------------------------------------------------------------------
// Structural validation (used by tests and the trace_model CI gate)
// ---------------------------------------------------------------------------

/// A minimal JSON value, parsed by [`parse_json`]. The vendored serde_json
/// stub cannot deserialize, so schema validation carries its own parser.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input came from a
                    // Rust string, so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf8"))?;
                    if let Some(c) = rest.chars().next() {
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a JSON document (full grammar, no serde).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

/// Summary of a validated trace, returned by [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceCheck {
    pub events: usize,
    pub launches: usize,
    pub counters: usize,
    pub instants: usize,
    pub tracks: usize,
}

/// Structurally validate Chrome `trace_event` JSON: well-formed, non-empty,
/// every event carries the phase-appropriate fields, durations are
/// non-negative, and launch/replay timestamps are monotonically
/// non-decreasing per track (spans are recorded at close and may precede
/// earlier-timestamped events in the array; Chrome sorts on load).
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    let mut check = TraceCheck {
        events: events.len(),
        ..Default::default()
    };
    let mut track_clock: HashMap<i64, f64> = HashMap::new();
    let mut tracks: Vec<i64> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing ph"))?;
        ev.get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing name"))?;
        if ph == "M" {
            continue; // metadata carries no timestamp
        }
        let ts = ev
            .get("ts")
            .and_then(Json::as_num)
            .ok_or(format!("event {i}: missing ts"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i}: bad ts {ts}"));
        }
        let tid = ev
            .get("tid")
            .and_then(Json::as_num)
            .ok_or(format!("event {i}: missing tid"))? as i64;
        if !tracks.contains(&tid) {
            tracks.push(tid);
        }
        match ph {
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or(format!("event {i}: X without dur"))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {i}: bad dur {dur}"));
                }
                let cat = ev.get("cat").and_then(Json::as_str).unwrap_or("");
                if cat == "launch" || cat == "replay" {
                    // Tolerance: ts and dur are serialized at 1e-6 precision,
                    // so the re-derived clock can disagree by ~1.5 LSB.
                    let clock = track_clock.entry(tid).or_insert(0.0);
                    if ts + 5e-6 < *clock {
                        return Err(format!(
                            "event {i}: non-monotonic ts {ts} < track clock {clock} on tid {tid}"
                        ));
                    }
                    *clock = ts + dur;
                    if cat == "launch" {
                        check.launches += 1;
                    }
                }
            }
            "C" => check.counters += 1,
            "i" => {
                check.instants += 1;
                if ev.get("s").and_then(Json::as_str).is_none() {
                    return Err(format!("event {i}: instant without scope"));
                }
            }
            other => return Err(format!("event {i}: unknown phase '{other}'")),
        }
    }
    check.tracks = tracks.len();
    if check.launches == 0 {
        return Err("trace contains no launch events".into());
    }
    Ok(check)
}

// ---------------------------------------------------------------------------
// Profile report
// ---------------------------------------------------------------------------

/// One top-level span (model layer) with the launch work it covers.
#[derive(Debug, Clone)]
pub struct LayerRow {
    pub name: String,
    pub track: String,
    pub start_us: f64,
    pub dur_us: f64,
    /// Launches inside the layer, counting each replay repetition.
    pub launches: u64,
    pub flops: u64,
    pub dram_bytes: u64,
}

/// Aggregate of all launches (or replays) sharing a kernel name.
#[derive(Debug, Clone)]
pub struct KernelRow {
    pub name: String,
    pub launches: u64,
    pub time_us: f64,
    pub flops: u64,
    pub dram_bytes: u64,
    /// The most common binding pipeline across these launches.
    pub bound_by: String,
}

/// Aggregated view of a traced model run: per-layer rows (from top-level
/// spans, with synthetic rows for work outside any span, so the layer
/// column always sums to [`ProfileReport::total_us`]), a per-kernel table,
/// roofline attribution, and the slowest individual launches.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Total simulated time: every launch plus every replay, all tracks.
    pub total_us: f64,
    pub layers: Vec<LayerRow>,
    pub kernels: Vec<KernelRow>,
    /// (kernel, time_us) of the slowest individual launches, descending.
    pub top: Vec<(String, f64)>,
    /// Simulated time attributed to each binding pipeline, descending.
    pub bound_by: Vec<(String, f64)>,
}

impl ProfileReport {
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut report = ProfileReport::default();

        // Work items: launches and replays, with (track, ts, dur, ...).
        struct Work<'a> {
            ev: &'a TraceEvent,
            count: u64,
            flops: u64,
            dram_bytes: u64,
        }
        let work: Vec<Work<'_>> = events
            .iter()
            .filter_map(|ev| match &ev.kind {
                EventKind::Launch { stats, .. } => Some(Work {
                    ev,
                    count: 1,
                    flops: stats.flops,
                    dram_bytes: stats.dram_bytes,
                }),
                EventKind::Replay { count, .. } => Some(Work {
                    ev,
                    count: *count,
                    flops: 0,
                    dram_bytes: 0,
                }),
                _ => None,
            })
            .collect();
        report.total_us = work.iter().map(|w| w.ev.dur_us()).sum();

        // Top-level spans: not contained in a larger span on the same track.
        let spans: Vec<&TraceEvent> = events
            .iter()
            .filter(|ev| matches!(ev.kind, EventKind::Span { .. }))
            .collect();
        let contains = |outer: &TraceEvent, inner: &TraceEvent| {
            outer.track == inner.track
                && outer.ts_us <= inner.ts_us + 1e-9
                && outer.ts_us + outer.dur_us() + 1e-9 >= inner.ts_us + inner.dur_us()
                && outer.dur_us() > inner.dur_us() + 1e-9
        };
        let top_level: Vec<&TraceEvent> = spans
            .iter()
            .filter(|s| !spans.iter().any(|o| contains(o, s)))
            .copied()
            .collect();

        let covered = |w: &Work<'_>, span: &TraceEvent| {
            span.track == w.ev.track
                && w.ev.ts_us + 1e-9 >= span.ts_us
                && w.ev.ts_us + 1e-9 < span.ts_us + span.dur_us()
        };
        for span in &top_level {
            let mut row = LayerRow {
                name: span.name.clone(),
                track: span.track.clone(),
                start_us: span.ts_us,
                dur_us: span.dur_us(),
                launches: 0,
                flops: 0,
                dram_bytes: 0,
            };
            for w in work.iter().filter(|w| covered(w, span)) {
                row.launches += w.count;
                row.flops += w.flops;
                row.dram_bytes += w.dram_bytes;
            }
            report.layers.push(row);
        }
        // Work outside every top-level span becomes its own synthetic row,
        // so Σ layer durations == total_us by construction.
        for w in &work {
            if !top_level.iter().any(|s| covered(w, s)) {
                report.layers.push(LayerRow {
                    name: format!("({})", w.ev.name),
                    track: w.ev.track.clone(),
                    start_us: w.ev.ts_us,
                    dur_us: w.ev.dur_us(),
                    launches: w.count,
                    flops: w.flops,
                    dram_bytes: w.dram_bytes,
                });
            }
        }
        report.layers.sort_by(|a, b| {
            a.track.cmp(&b.track).then(
                a.start_us
                    .partial_cmp(&b.start_us)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });

        // Per-kernel aggregation (replays keyed by their event name).
        let mut kernel_index: HashMap<&str, usize> = HashMap::new();
        let mut bound_votes: Vec<HashMap<String, f64>> = Vec::new();
        for w in &work {
            let name = w.ev.name.as_str();
            let next = report.kernels.len();
            let slot = *kernel_index.entry(name).or_insert(next);
            if slot == next {
                report.kernels.push(KernelRow {
                    name: name.to_string(),
                    launches: 0,
                    time_us: 0.0,
                    flops: 0,
                    dram_bytes: 0,
                    bound_by: String::new(),
                });
                bound_votes.push(HashMap::new());
            }
            let row = &mut report.kernels[slot];
            row.launches += w.count;
            row.time_us += w.ev.dur_us();
            row.flops += w.flops;
            row.dram_bytes += w.dram_bytes;
            if let EventKind::Launch { stats, .. } = &w.ev.kind {
                *bound_votes[slot]
                    .entry(stats.bound_by.clone())
                    .or_insert(0.0) += stats.time_us;
                match report
                    .bound_by
                    .iter_mut()
                    .find(|(b, _)| *b == stats.bound_by)
                {
                    Some((_, t)) => *t += stats.time_us,
                    None => report
                        .bound_by
                        .push((stats.bound_by.clone(), stats.time_us)),
                }
            }
        }
        for (row, votes) in report.kernels.iter_mut().zip(&bound_votes) {
            row.bound_by = votes
                .iter()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(b, _)| b.clone())
                .unwrap_or_default();
        }
        report.kernels.sort_by(|a, b| {
            b.time_us
                .partial_cmp(&a.time_us)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        report
            .bound_by
            .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

        // Slowest individual launches.
        let mut top: Vec<(String, f64)> = events
            .iter()
            .filter_map(|ev| match &ev.kind {
                EventKind::Launch { stats, .. } => Some((stats.kernel.clone(), stats.time_us)),
                _ => None,
            })
            .collect();
        top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        top.truncate(5);
        report.top = top;
        report
    }

    /// Signed drift between the per-layer rows and [`ProfileReport::total_us`]:
    /// `Σ layers[i].dur_us - total_us`. Zero (up to rounding) whenever the
    /// report is internally consistent — every simulated microsecond either
    /// falls inside a top-level span or gets a synthetic row.
    pub fn layer_sum_drift_us(&self) -> f64 {
        self.layers.iter().map(|l| l.dur_us).sum::<f64>() - self.total_us
    }

    /// The layer-sum invariant as a checked result, for gates alongside
    /// [`validate_chrome_trace`]: the per-layer breakdown must account for
    /// every simulated microsecond of launch and replay work. A model that
    /// opens a span and attributes work to it by multiplication (instead of
    /// tracing the launches/replays inside it) shows up here as drift.
    pub fn check(&self) -> Result<(), String> {
        let drift = self.layer_sum_drift_us();
        let tol = 1e-6 * self.total_us.max(1.0);
        if drift.abs() > tol {
            return Err(format!(
                "per-layer rows sum to {:.6} us but the trace total is {:.6} us \
                 (drift {drift:+.6} us)",
                self.total_us + drift,
                self.total_us
            ));
        }
        Ok(())
    }

    /// Render the report as a plain-text table block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "profile report — {:.1} us simulated total\n",
            self.total_us
        ));
        out.push_str("\n  per-layer (top-level spans):\n");
        for l in &self.layers {
            out.push_str(&format!(
                "    {:<32} {:>12.1} us  {:>6} launches  {:>9.2} GFLOP  {:>8.1} MB\n",
                l.name,
                l.dur_us,
                l.launches,
                l.flops as f64 / 1e9,
                l.dram_bytes as f64 / 1e6,
            ));
        }
        out.push_str("\n  per-kernel:\n");
        for k in &self.kernels {
            out.push_str(&format!(
                "    {:<44} {:>12.1} us  {:>6} launches  bound by {}\n",
                k.name, k.time_us, k.launches, k.bound_by,
            ));
        }
        out.push_str("\n  roofline attribution:\n");
        for (b, t) in &self.bound_by {
            let pct = if self.total_us > 0.0 {
                100.0 * t / self.total_us
            } else {
                0.0
            };
            out.push_str(&format!("    {b:<10} {t:>12.1} us  ({pct:.1}%)\n"));
        }
        out.push_str("\n  slowest launches:\n");
        for (name, us) in &self.top {
            out.push_str(&format!("    {name:<44} {us:>12.1} us\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{AccessPattern, BufferSpec};
    use crate::cost::{BlockContext, BufferId};
    use crate::device::DeviceConfig;
    use crate::dim::Dim3;
    use crate::kernel::Kernel;
    use crate::launch::Gpu;
    use std::sync::Mutex as TestMutex;

    /// The recorder is process-global; tests that enable/disable it must not
    /// overlap each other (launches from *other* tests land on other tracks
    /// and are filtered out, but a concurrent disable would drop events).
    static TEST_LOCK: TestMutex<()> = TestMutex::new(());

    struct Tiny;

    impl Kernel for Tiny {
        fn name(&self) -> String {
            "trace_tiny".into()
        }
        fn grid(&self) -> Dim3 {
            Dim3::x(4)
        }
        fn block_dim(&self) -> Dim3 {
            Dim3::x(128)
        }
        fn buffers(&self) -> Vec<BufferSpec> {
            vec![BufferSpec {
                id: BufferId(0),
                name: "x",
                footprint_bytes: 4096,
                pattern: AccessPattern::Streaming,
            }]
        }
        fn execute_block(&self, _block: Dim3, ctx: &mut BlockContext) {
            ctx.fma(64, 32 * 64);
            ctx.ld_global(BufferId(0), 0, 32, 1, 4);
        }
    }

    fn test_gpu(name: &str) -> Gpu {
        let mut dev = DeviceConfig::v100();
        dev.name = name.to_string();
        Gpu::new(dev)
    }

    #[test]
    fn records_launches_and_spans_with_advancing_clock() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        enable();
        let track = "trace-test-clock";
        let gpu = test_gpu(track);
        begin_span("layer", track, "layer0");
        let a = gpu.profile(&Tiny);
        let b = gpu.profile(&Tiny);
        let span_dur = end_span(track);
        replay(track, "layer0 xN", 3.0 * (a.time_us + b.time_us), 3);
        let events: Vec<TraceEvent> = disable().into_iter().filter(|e| e.track == track).collect();

        let launches: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Launch { .. }))
            .collect();
        assert_eq!(launches.len(), 2);
        assert_eq!(launches[0].ts_us, 0.0, "track clock starts at zero");
        assert!(
            (launches[1].ts_us - a.time_us).abs() < 1e-12,
            "second launch starts when the first ends"
        );
        assert!(
            (span_dur - (a.time_us + b.time_us)).abs() < 1e-9,
            "span duration is the simulated time elapsed while open"
        );
        let replay_ev = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Replay { .. }))
            .expect("replay recorded");
        assert!((replay_ev.ts_us - (a.time_us + b.time_us)).abs() < 1e-9);
    }

    #[test]
    fn disabled_recorder_captures_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _ = disable();
        assert!(!enabled());
        let track = "trace-test-disabled";
        let gpu = test_gpu(track);
        gpu.profile(&Tiny);
        begin_span("layer", track, "ignored");
        assert_eq!(end_span(track), 0.0);
        enable();
        let events = disable();
        assert!(
            !events.iter().any(|e| e.track == track),
            "nothing recorded while disabled"
        );
    }

    #[test]
    fn chrome_export_is_schema_valid_and_monotonic() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        enable();
        let track = "trace-test-chrome";
        let gpu = test_gpu(track);
        begin_span("layer", track, "l\"ayer\n0"); // escaping exercised
        gpu.profile(&Tiny);
        gpu.profile(&Tiny);
        end_span(track);
        instant("cache", track, "miss: trace_tiny");
        let events: Vec<TraceEvent> = disable().into_iter().filter(|e| e.track == track).collect();
        let json = chrome_trace_json(&events);
        let check = validate_chrome_trace(&json).expect("structurally valid trace");
        assert_eq!(check.launches, 2);
        assert_eq!(check.instants, 1);
        assert_eq!(check.tracks, 1);
        assert!(check.counters >= 4, "occupancy + dram counters synthesized");
    }

    #[test]
    fn transfer_events_advance_clock_and_export_counters() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        enable();
        let track = "trace-test-xfer";
        let gpu = test_gpu(track);
        gpu.profile(&Tiny);
        let before = clock(track);
        transfer(track, "dev1", "shard -> dev1", 1 << 20, 12.5);
        assert!(
            (clock(track) - (before + 12.5)).abs() < 1e-9,
            "transfer occupies the source track"
        );
        gpu.profile(&Tiny);
        let events: Vec<TraceEvent> = disable().into_iter().filter(|e| e.track == track).collect();
        let xfer = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Transfer { .. }))
            .expect("transfer recorded");
        assert!((xfer.ts_us - before).abs() < 1e-9);
        assert!((xfer.dur_us() - 12.5).abs() < 1e-12);

        let json = chrome_trace_json(&events);
        let check = validate_chrome_trace(&json).expect("transfer traces stay schema-valid");
        assert_eq!(check.launches, 2);
        assert!(
            json.contains("interconnect_bytes"),
            "bytes-in-flight counter track synthesized"
        );
        assert!(
            check.counters >= 2 * 4 + 2,
            "launch + interconnect counters"
        );
    }

    #[test]
    fn counter_events_export_as_counter_phase() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        enable();
        let track = "trace-test-counter";
        let gpu = test_gpu(track);
        gpu.profile(&Tiny);
        counter("joint", track, "joint_tiles_skipped", 42);
        counter("joint", track, "joint_tiles_total", 64);
        let events: Vec<TraceEvent> = disable().into_iter().filter(|e| e.track == track).collect();
        let skipped = events
            .iter()
            .find(|e| e.name == "joint_tiles_skipped")
            .expect("counter recorded");
        assert!(matches!(skipped.kind, EventKind::Counter { value: 42 }));
        assert_eq!(skipped.dur_us(), 0.0, "counters do not occupy the track");
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"name\":\"joint_tiles_total\",\"cat\":\"joint\",\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"value\":64}"));
        let check = validate_chrome_trace(&json).expect("counter traces stay schema-valid");
        // 4 synthesized launch counters + the 2 explicit ones.
        assert!(check.counters >= 6);
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_err());
        // Well-formed JSON, but an X event without a duration.
        let bad = "{\"traceEvents\":[{\"name\":\"k\",\"ph\":\"X\",\"ts\":0,\
                    \"pid\":0,\"tid\":0}]}";
        assert!(validate_chrome_trace(bad).is_err());
        // Launch events running backwards on one track.
        let backwards = "{\"traceEvents\":[\
            {\"name\":\"a\",\"cat\":\"launch\",\"ph\":\"X\",\"ts\":100,\"dur\":50,\"pid\":0,\"tid\":0},\
            {\"name\":\"b\",\"cat\":\"launch\",\"ph\":\"X\",\"ts\":10,\"dur\":5,\"pid\":0,\"tid\":0}\
        ]}";
        assert!(validate_chrome_trace(backwards)
            .expect_err("must reject")
            .contains("non-monotonic"));
    }

    #[test]
    fn parse_json_handles_the_grammar() {
        let doc = parse_json("{\"a\": [1, -2.5e1, \"s\\u0041\", true, false, null], \"b\": {}}")
            .expect("parses");
        let arr = doc.get("a").and_then(Json::as_arr).expect("array");
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].as_num(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("sA"));
        assert_eq!(arr[3], Json::Bool(true));
        assert_eq!(arr[5], Json::Null);
        assert!(parse_json("{\"unterminated\": ").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    /// Per-layer rows must sum to the total, with uncovered work surfaced
    /// as synthetic rows — the invariant the dnn profile report rides on.
    #[test]
    fn profile_report_layers_sum_to_total() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        enable();
        let track = "trace-test-report";
        let gpu = test_gpu(track);
        begin_span("layer", track, "stem");
        gpu.profile(&Tiny);
        end_span(track);
        begin_span("layer", track, "body");
        gpu.profile(&Tiny);
        gpu.profile(&Tiny);
        end_span(track);
        gpu.profile(&Tiny); // outside any span
        let events: Vec<TraceEvent> = disable().into_iter().filter(|e| e.track == track).collect();
        let report = ProfileReport::from_events(&events);
        assert_eq!(report.layers.len(), 3, "stem, body, one synthetic row");
        let layer_sum: f64 = report.layers.iter().map(|l| l.dur_us).sum();
        assert!(
            (layer_sum - report.total_us).abs() <= 1e-9 * report.total_us.max(1.0),
            "layer durations {layer_sum} must sum to total {}",
            report.total_us
        );
        report.check().expect("sum invariant holds");
        assert!(report.layer_sum_drift_us().abs() <= 1e-9 * report.total_us.max(1.0));
        let body = report
            .layers
            .iter()
            .find(|l| l.name == "body")
            .expect("body layer");
        assert_eq!(body.launches, 2);
        assert!(report.kernels.iter().any(|k| k.name == "trace_tiny"));
        assert!(!report.top.is_empty());
        assert!(!report.render().is_empty());
    }

    /// A doctored report whose layer rows no longer cover the total must
    /// fail the sum-invariant check.
    #[test]
    fn report_check_rejects_drift() {
        let mut report = ProfileReport {
            total_us: 100.0,
            ..Default::default()
        };
        report.layers.push(LayerRow {
            name: "layer0".into(),
            track: "t".into(),
            start_us: 0.0,
            dur_us: 60.0,
            launches: 1,
            flops: 0,
            dram_bytes: 0,
        });
        let err = report.check().expect_err("40 us unaccounted");
        assert!(err.contains("drift"), "{err}");
        assert!((report.layer_sum_drift_us() - (-40.0)).abs() < 1e-9);
    }
}
