//! Kernel sanitizer: the simulator's analogue of CUDA `compute-sanitizer`.
//!
//! Kernels in this repo execute against two unchecked contracts: thread
//! blocks write a shared output buffer through [`SyncUnsafeSlice`] on a
//! disjoint-tiling promise, and the cost recorder ([`BlockContext`]) trusts
//! that traced addresses are in-bounds and that vector accesses respect the
//! alignment legality that ROMA (§III-B of Gale et al., SC 2020) exists to
//! guarantee. A launch run through [`Gpu::sanitize`] turns violations of
//! those contracts into typed, testable diagnostics instead of silent UB or
//! silent mismodeling:
//!
//! * **racecheck** — two different thread blocks writing the same output
//!   index (via a per-index writer-ID shadow map under the instrumented
//!   [`SyncUnsafeSlice`]), plus intra-block shared-memory read-after-write
//!   hazards across `bar_sync` epochs (a block-scope staging store followed
//!   by a block-scope load with no intervening barrier, in a multi-warp
//!   block).
//! * **memcheck** — global accesses beyond the declared
//!   [`BufferSpec::footprint_bytes`], slice accesses beyond the output
//!   length, and per-epoch shared staging that exceeds the declared shared
//!   memory.
//! * **aligncheck** — vector accesses (`vec_width > 1`) whose byte address
//!   is not naturally aligned to `vec_width * elem_bytes`.
//! * **lints** — warnings (not failures) for fully-uncoalesced global loads
//!   and ≥8-way shared-memory bank conflicts.
//!
//! [`SyncUnsafeSlice`]: crate::util::SyncUnsafeSlice
//! [`BlockContext`]: crate::cost::BlockContext
//! [`Gpu::sanitize`]: crate::launch::Gpu::sanitize
//! [`BufferSpec::footprint_bytes`]: crate::cache::BufferSpec

use crate::cache::BufferSpec;
use crate::cost::MAX_BUFFERS;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Three-valued verdict of one static check class (see
/// [`crate::static_check`]). The lattice is ordered by severity:
/// `Proven < NeedsDynamic < Refuted`.
///
/// * `Proven` — the property holds for every block of the launch, shown from
///   the launch descriptor alone; the matching dynamic check is redundant.
/// * `Refuted` — the descriptor already contains a counterexample; executing
///   the launch would only rediscover it.
/// * `NeedsDynamic` — the property depends on runtime data (gathered
///   indices, barrier interleavings); fall back to the dynamic sanitizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Verdict {
    Proven,
    NeedsDynamic,
    Refuted,
}

impl Verdict {
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Proven => "proven",
            Verdict::NeedsDynamic => "needs_dynamic",
            Verdict::Refuted => "refuted",
        }
    }
}

/// The check classes the static auditor can rule on. Each maps onto the
/// dynamic check the sanitizer would otherwise run for every block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckClass {
    /// Traced global accesses vs declared buffer footprints (memcheck).
    Bounds,
    /// Vector-access natural alignment (aligncheck).
    Alignment,
    /// Per-epoch block-scope staging vs declared shared memory, and the
    /// declared shared memory vs the device's per-block capacity.
    SharedCapacity,
    /// Grid/block dimension legality and nonzero occupancy.
    GridOccupancy,
    /// Block-scope store→load phases separated by `bar_sync`.
    BarrierStructure,
}

impl CheckClass {
    pub const ALL: [CheckClass; 5] = [
        CheckClass::Bounds,
        CheckClass::Alignment,
        CheckClass::SharedCapacity,
        CheckClass::GridOccupancy,
        CheckClass::BarrierStructure,
    ];

    pub fn name(self) -> &'static str {
        match self {
            CheckClass::Bounds => "bounds",
            CheckClass::Alignment => "alignment",
            CheckClass::SharedCapacity => "shared_capacity",
            CheckClass::GridOccupancy => "grid_occupancy",
            CheckClass::BarrierStructure => "barrier_structure",
        }
    }
}

/// Which dynamic check classes a sanitized launch still has to run. A class
/// the static auditor proved is switched off; everything else stays on.
/// Racecheck (the cross-block shadow map) has no static counterpart and is
/// always live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChecksMask {
    pub bounds: bool,
    pub alignment: bool,
    pub shared_capacity: bool,
    pub barrier: bool,
}

impl ChecksMask {
    /// Every dynamic check armed (the pre-audit behavior).
    pub const ALL: ChecksMask = ChecksMask {
        bounds: true,
        alignment: true,
        shared_capacity: true,
        barrier: true,
    };

    /// How many of the four per-block check classes are switched off.
    pub fn skipped(&self) -> u64 {
        [
            self.bounds,
            self.alignment,
            self.shared_capacity,
            self.barrier,
        ]
        .iter()
        .filter(|&&on| !on)
        .count() as u64
    }
}

/// Scope of a shared-memory access for the barrier-epoch hazard check.
///
/// `Warp` marks warp-synchronous staging (e.g. Sputnik's sparse-operand
/// loads, where the warp that stores is the only consumer — legal without a
/// barrier). `Block` marks staging consumed by other warps of the block,
/// which requires a `bar_sync` between the store and the load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SmemScope {
    /// Producer and consumer are the same warp; no barrier required.
    Warp,
    /// Data crosses warps within the block; a barrier is required between
    /// the store phase and the load phase.
    Block,
}

/// A hard sanitizer finding: the kernel (or its cost model) broke a contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SanitizerViolation {
    /// Two different thread blocks wrote the same output-slice index.
    CrossBlockRace {
        index: usize,
        first_writer: u64,
        second_writer: u64,
    },
    /// An output-slice write beyond the slice length.
    OutOfBoundsWrite { index: usize, len: usize },
    /// An output-slice read beyond the slice length.
    OutOfBoundsRead { index: usize, len: usize },
    /// A traced global access beyond the buffer's declared footprint.
    GlobalOutOfBounds {
        buffer: &'static str,
        byte_addr: u64,
        bytes: u64,
        footprint: u64,
    },
    /// A traced global access against a buffer slot the kernel never
    /// declared in [`Kernel::buffers`](crate::kernel::Kernel::buffers).
    UndeclaredBuffer { slot: u8 },
    /// Block-scope shared-memory stores within one barrier epoch exceeded
    /// the kernel's declared shared memory.
    SharedStageOverflow { stored_bytes: u64, smem_bytes: u64 },
    /// A vector access whose byte address is not aligned to the vector size.
    Misaligned {
        buffer: &'static str,
        byte_addr: u64,
        vec_width: u32,
        elem_bytes: u32,
    },
    /// A block-scope shared-memory load observed stores from the same
    /// barrier epoch: the kernel omitted a `bar_sync` between the store
    /// phase and the load phase of a multi-warp block.
    MissingBarrier { epoch: u64 },
    /// The static auditor refuted a check class from the launch descriptor
    /// alone (see [`crate::static_check`]): the violation is certain without
    /// executing a single block.
    StaticallyRefuted { class: String, detail: String },
}

impl std::fmt::Display for SanitizerViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SanitizerViolation::CrossBlockRace { index, first_writer, second_writer } => write!(
                f,
                "cross-block race: blocks {first_writer} and {second_writer} both wrote index {index}"
            ),
            SanitizerViolation::OutOfBoundsWrite { index, len } => {
                write!(f, "out-of-bounds write: index {index} >= len {len}")
            }
            SanitizerViolation::OutOfBoundsRead { index, len } => {
                write!(f, "out-of-bounds read: index {index} >= len {len}")
            }
            SanitizerViolation::GlobalOutOfBounds { buffer, byte_addr, bytes, footprint } => write!(
                f,
                "global OOB on `{buffer}`: [{byte_addr}, {}) exceeds footprint {footprint}",
                byte_addr + bytes
            ),
            SanitizerViolation::UndeclaredBuffer { slot } => {
                write!(f, "traced access to undeclared buffer slot {slot}")
            }
            SanitizerViolation::SharedStageOverflow { stored_bytes, smem_bytes } => write!(
                f,
                "shared staging overflow: {stored_bytes} B stored in one epoch, {smem_bytes} B declared"
            ),
            SanitizerViolation::Misaligned { buffer, byte_addr, vec_width, elem_bytes } => write!(
                f,
                "misaligned vec{vec_width} access on `{buffer}`: address {byte_addr} not aligned to {}",
                vec_width * elem_bytes
            ),
            SanitizerViolation::MissingBarrier { epoch } => write!(
                f,
                "missing barrier: block-scope smem load after store in epoch {epoch} with no bar_sync"
            ),
            SanitizerViolation::StaticallyRefuted { class, detail } => {
                write!(f, "statically refuted [{class}]: {detail}")
            }
        }
    }
}

/// A soft sanitizer finding: legal, but a performance smell worth knowing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SanitizerWarning {
    /// A gather or long-stride load whose lanes each touched their own
    /// sector — zero intra-warp coalescing.
    UncoalescedLoad {
        buffer: &'static str,
        lanes: u32,
        sectors: u64,
    },
    /// A shared-memory access with `ways`-way bank conflicts (>= 8).
    BankConflict { ways: u32 },
}

impl std::fmt::Display for SanitizerWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SanitizerWarning::UncoalescedLoad {
                buffer,
                lanes,
                sectors,
            } => {
                write!(
                    f,
                    "uncoalesced load on `{buffer}`: {lanes} lanes touched {sectors} sectors"
                )
            }
            SanitizerWarning::BankConflict { ways } => {
                write!(f, "{ways}-way shared-memory bank conflict")
            }
        }
    }
}

/// Cap on the example violations/warnings kept per report (total counts are
/// always exact).
pub const MAX_REPORTED: usize = 64;
/// Cap on examples kept per block before merging into the report.
const MAX_PER_BLOCK: usize = 16;

/// The outcome of one sanitized launch.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SanitizerReport {
    /// Kernel name.
    pub kernel: String,
    /// Thread blocks executed.
    pub blocks: u64,
    /// Total hard violations (exact, even when examples are capped).
    pub violation_count: u64,
    /// Total lint warnings (exact).
    pub warning_count: u64,
    /// Example violations, capped at [`MAX_REPORTED`].
    pub violations: Vec<SanitizerViolation>,
    /// Example warnings, capped at [`MAX_REPORTED`].
    pub warnings: Vec<SanitizerWarning>,
}

impl SanitizerReport {
    pub fn new(kernel: String, blocks: u64) -> Self {
        Self {
            kernel,
            blocks,
            ..Self::default()
        }
    }

    /// No hard violations (warnings do not make a launch dirty).
    pub fn clean(&self) -> bool {
        self.violation_count == 0
    }

    fn push_violation(&mut self, v: SanitizerViolation) {
        self.violation_count += 1;
        if self.violations.len() < MAX_REPORTED {
            self.violations.push(v);
        }
    }

    /// Fold a static refutation (from [`crate::static_check`]) into the
    /// report as a hard violation: a statically refuted launch is dirty even
    /// if the dynamic checks happened to miss the counterexample block.
    pub fn push_static_refutation(&mut self, class: CheckClass, detail: &str) {
        self.push_violation(SanitizerViolation::StaticallyRefuted {
            class: class.name().to_string(),
            detail: detail.to_string(),
        });
    }

    fn push_warning(&mut self, w: SanitizerWarning) {
        self.warning_count += 1;
        if self.warnings.len() < MAX_REPORTED {
            self.warnings.push(w);
        }
    }

    /// Fold one block's findings into the launch report.
    pub(crate) fn absorb_block(&mut self, san: BlockSan) {
        let extra_v = san
            .violation_count
            .saturating_sub(san.violations.len() as u64);
        let extra_w = san.warning_count.saturating_sub(san.warnings.len() as u64);
        for v in san.violations {
            self.push_violation(v);
        }
        for w in san.warnings {
            self.push_warning(w);
        }
        self.violation_count += extra_v;
        self.warning_count += extra_w;
    }

    /// Fold the session-global (cross-block) findings into the report.
    pub(crate) fn absorb_session(&mut self, count: u64, examples: Vec<SanitizerViolation>) {
        let extra = count.saturating_sub(examples.len() as u64);
        for v in examples {
            self.push_violation(v);
        }
        self.violation_count += extra;
    }
}

impl std::fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} blocks, {} violation(s), {} warning(s)",
            self.kernel, self.blocks, self.violation_count, self.warning_count
        )?;
        for v in &self.violations {
            write!(f, "\n  VIOLATION {v}")?;
        }
        for w in &self.warnings {
            write!(f, "\n  warning   {w}")?;
        }
        Ok(())
    }
}

/// Per-block sanitizer state, carried inside a sanitized [`BlockContext`]
/// (one per block, no cross-thread sharing — the cross-block shadow map is
/// the only global state).
///
/// [`BlockContext`]: crate::cost::BlockContext
#[derive(Debug)]
pub struct BlockSan {
    /// Declared footprint per buffer slot (name, bytes).
    footprints: [Option<(&'static str, u64)>; MAX_BUFFERS],
    /// Declared shared memory per block.
    smem_bytes: u32,
    /// Whether the block runs more than one warp (barrier/capacity hazards
    /// only exist across warps; single-warp blocks are warp-synchronous).
    multi_warp: bool,
    /// Which check classes are still armed; classes the static auditor
    /// proved are off (see [`ChecksMask`]).
    mask: ChecksMask,
    /// Barrier epoch counter (incremented by `bar_sync`).
    epoch: u64,
    /// A block-scope smem store happened in the current epoch.
    store_in_epoch: bool,
    /// Block-scope bytes staged in the current epoch.
    epoch_store_bytes: u64,
    /// Dedup flags: report each hazard class at most once per epoch.
    barrier_reported: bool,
    overflow_reported: bool,
    violation_count: u64,
    warning_count: u64,
    violations: Vec<SanitizerViolation>,
    warnings: Vec<SanitizerWarning>,
}

impl BlockSan {
    pub fn for_kernel(buffers: &[BufferSpec], smem_bytes: u32, multi_warp: bool) -> Self {
        Self::with_mask(buffers, smem_bytes, multi_warp, ChecksMask::ALL)
    }

    /// A per-block sanitizer with statically proven check classes disarmed.
    pub fn with_mask(
        buffers: &[BufferSpec],
        smem_bytes: u32,
        multi_warp: bool,
        mask: ChecksMask,
    ) -> Self {
        let mut footprints: [Option<(&'static str, u64)>; MAX_BUFFERS] = [None; MAX_BUFFERS];
        for b in buffers {
            let slot = b.id.0 as usize;
            if slot < MAX_BUFFERS {
                footprints[slot] = Some((b.name, b.footprint_bytes));
            }
        }
        Self {
            footprints,
            smem_bytes,
            multi_warp,
            mask,
            epoch: 0,
            store_in_epoch: false,
            epoch_store_bytes: 0,
            barrier_reported: false,
            overflow_reported: false,
            violation_count: 0,
            warning_count: 0,
            violations: Vec::new(),
            warnings: Vec::new(),
        }
    }

    fn record(&mut self, v: SanitizerViolation) {
        self.violation_count += 1;
        if self.violations.len() < MAX_PER_BLOCK {
            self.violations.push(v);
        }
    }

    fn warn(&mut self, w: SanitizerWarning) {
        self.warning_count += 1;
        if self.warnings.len() < MAX_PER_BLOCK {
            self.warnings.push(w);
        }
    }

    /// Whether the bounds (memcheck) class is still armed. The batched trace
    /// recorders consult this to restore their sanitizer-free fast path when
    /// the static auditor proved bounds.
    #[inline]
    pub(crate) fn checks_bounds(&self) -> bool {
        self.mask.bounds
    }

    /// Memcheck: a traced global access of `bytes` at `byte_addr` against
    /// the declared footprint of buffer `slot`.
    pub(crate) fn check_global(&mut self, slot: usize, byte_addr: u64, bytes: u64) {
        if bytes == 0 || !self.mask.bounds {
            return;
        }
        match self.footprints.get(slot).copied().flatten() {
            None => self.record(SanitizerViolation::UndeclaredBuffer { slot: slot as u8 }),
            Some((name, footprint)) => {
                if byte_addr.saturating_add(bytes) > footprint {
                    self.record(SanitizerViolation::GlobalOutOfBounds {
                        buffer: name,
                        byte_addr,
                        bytes,
                        footprint,
                    });
                }
            }
        }
    }

    /// Aligncheck: vector accesses must be naturally aligned.
    pub(crate) fn check_align(
        &mut self,
        slot: usize,
        byte_addr: u64,
        vec_width: u32,
        elem_bytes: u32,
    ) {
        if vec_width <= 1 || !self.mask.alignment {
            return;
        }
        let align = vec_width as u64 * elem_bytes as u64;
        if align > 0 && !byte_addr.is_multiple_of(align) {
            let name = self
                .footprints
                .get(slot)
                .copied()
                .flatten()
                .map_or("<undeclared>", |(n, _)| n);
            self.record(SanitizerViolation::Misaligned {
                buffer: name,
                byte_addr,
                vec_width,
                elem_bytes,
            });
        }
    }

    /// Barrier-epoch tracking: a shared-memory store of `bytes`.
    pub(crate) fn note_smem_store(&mut self, bytes: u64, scope: SmemScope) {
        if scope != SmemScope::Block || !self.multi_warp {
            return;
        }
        if self.mask.barrier {
            self.store_in_epoch = true;
        }
        if !self.mask.shared_capacity {
            return;
        }
        self.epoch_store_bytes += bytes;
        if !self.overflow_reported
            && self.smem_bytes > 0
            && self.epoch_store_bytes > self.smem_bytes as u64
        {
            self.overflow_reported = true;
            self.record(SanitizerViolation::SharedStageOverflow {
                stored_bytes: self.epoch_store_bytes,
                smem_bytes: self.smem_bytes as u64,
            });
        }
    }

    /// Barrier-epoch tracking: a shared-memory load. A block-scope load in
    /// an epoch that already staged block-scope data is a read-after-write
    /// hazard: the consumer warps never synchronized with the producers.
    pub(crate) fn note_smem_load(&mut self, scope: SmemScope) {
        if scope == SmemScope::Block
            && self.multi_warp
            && self.mask.barrier
            && self.store_in_epoch
            && !self.barrier_reported
        {
            self.barrier_reported = true;
            self.record(SanitizerViolation::MissingBarrier { epoch: self.epoch });
        }
    }

    /// Lint: an N-way bank conflict (>= 8 ways is pathological).
    pub(crate) fn note_bank_conflict(&mut self, ways: u32) {
        if ways >= 8 {
            self.warn(SanitizerWarning::BankConflict { ways });
        }
    }

    /// Lint: a warp-wide load where every lane paid its own sector.
    pub(crate) fn note_uncoalesced(&mut self, slot: usize, lanes: u32, sectors: u64) {
        if lanes >= 16 && sectors >= lanes as u64 {
            let name = self
                .footprints
                .get(slot)
                .copied()
                .flatten()
                .map_or("<undeclared>", |(n, _)| n);
            self.warn(SanitizerWarning::UncoalescedLoad {
                buffer: name,
                lanes,
                sectors,
            });
        }
    }

    /// A `bar_sync`: advance the epoch, clearing the hazard state.
    pub(crate) fn note_barrier(&mut self) {
        self.epoch += 1;
        self.store_in_epoch = false;
        self.epoch_store_bytes = 0;
        self.barrier_reported = false;
        self.overflow_reported = false;
    }
}

// ---------------------------------------------------------------------------
// Session state: the cross-block shadow map behind the instrumented
// SyncUnsafeSlice. One sanitized launch at a time holds the session lock, so
// concurrent test threads serialize instead of cross-contaminating shadow
// maps. Block executors (rayon workers) tag themselves with a thread-local
// block id around `execute_block`.
// ---------------------------------------------------------------------------

/// Sentinel: the current thread is not executing a sanitized block (host
/// code, e.g. test setup writing initial values).
const NO_BLOCK: u64 = u64::MAX;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static RACECHECK: AtomicBool = AtomicBool::new(true);
static SESSION: Mutex<()> = Mutex::new(());
static SHADOW: Mutex<Option<ShadowState>> = Mutex::new(None);

thread_local! {
    static CURRENT_BLOCK: Cell<u64> = const { Cell::new(NO_BLOCK) };
}

#[derive(Default)]
struct ShadowState {
    /// (slice base pointer, index) -> first writer's linear block id.
    writers: HashMap<(usize, usize), u64>,
    violation_count: u64,
    violations: Vec<SanitizerViolation>,
}

impl ShadowState {
    fn record(&mut self, v: SanitizerViolation) {
        self.violation_count += 1;
        if self.violations.len() < MAX_REPORTED {
            self.violations.push(v);
        }
    }
}

fn lock<T>(m: &'static Mutex<T>) -> MutexGuard<'static, T> {
    // A panic inside a sanitized kernel poisons these mutexes; the data is
    // plain bookkeeping, so recover rather than cascade.
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Holds the session lock for the duration of one sanitized launch.
pub(crate) struct SessionGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::SeqCst);
        *lock(&SHADOW) = None;
    }
}

/// Begin a sanitized launch: acquires the global session (serializing
/// sanitized launches across threads) and arms the shadow map.
/// `racecheck` disables the cross-block write check for kernels that
/// legitimately overlap (atomic accumulation).
pub(crate) fn begin_session(racecheck: bool) -> SessionGuard {
    let guard = lock(&SESSION);
    *lock(&SHADOW) = Some(ShadowState::default());
    RACECHECK.store(racecheck, Ordering::SeqCst);
    ACTIVE.store(true, Ordering::SeqCst);
    SessionGuard { _lock: guard }
}

/// Drain the session's cross-block findings (called before the guard drops).
pub(crate) fn drain_session() -> (u64, Vec<SanitizerViolation>) {
    match lock(&SHADOW).take() {
        Some(state) => (state.violation_count, state.violations),
        None => (0, Vec::new()),
    }
}

/// Whether a sanitized launch is currently in progress (fast path for the
/// instrumented slice).
#[inline]
pub(crate) fn session_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Tag the current thread as executing block `id` of the sanitized launch.
pub(crate) fn enter_block(id: u64) {
    CURRENT_BLOCK.with(|c| c.set(id));
}

/// Untag the current thread.
pub(crate) fn exit_block() {
    CURRENT_BLOCK.with(|c| c.set(NO_BLOCK));
}

/// Racecheck: claim `(base, index)` for the current block. Returns `false`
/// when another block already owns the index — the caller must then SKIP the
/// raw write, because performing it would be the very data race being
/// reported.
pub(crate) fn claim_write(base: usize, index: usize) -> bool {
    if !ACTIVE.load(Ordering::Relaxed) || !RACECHECK.load(Ordering::Relaxed) {
        return true;
    }
    let me = CURRENT_BLOCK.with(|c| c.get());
    if me == NO_BLOCK {
        // Host-side write (setup/teardown), not part of the kernel.
        return true;
    }
    let mut shadow = lock(&SHADOW);
    let Some(state) = shadow.as_mut() else {
        return true;
    };
    match state.writers.get(&(base, index)).copied() {
        None => {
            state.writers.insert((base, index), me);
            true
        }
        Some(first) if first == me => true,
        Some(first) => {
            state.record(SanitizerViolation::CrossBlockRace {
                index,
                first_writer: first,
                second_writer: me,
            });
            false
        }
    }
}

/// Memcheck: record a slice access beyond its length. Returns `true` when a
/// sanitized launch absorbed the violation (the caller skips the access);
/// `false` means no session is active and the caller should panic.
pub(crate) fn report_slice_oob(index: usize, len: usize, is_write: bool) -> bool {
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    let mut shadow = lock(&SHADOW);
    let Some(state) = shadow.as_mut() else {
        return false;
    };
    state.record(if is_write {
        SanitizerViolation::OutOfBoundsWrite { index, len }
    } else {
        SanitizerViolation::OutOfBoundsRead { index, len }
    });
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::AccessPattern;
    use crate::cost::BufferId;

    fn spec(slot: u8, name: &'static str, footprint: u64) -> BufferSpec {
        BufferSpec {
            id: BufferId(slot),
            name,
            footprint_bytes: footprint,
            pattern: AccessPattern::Streaming,
        }
    }

    #[test]
    fn memcheck_flags_footprint_overrun() {
        let mut san = BlockSan::for_kernel(&[spec(0, "x", 128)], 0, true);
        san.check_global(0, 0, 128); // exactly the footprint: fine
        assert_eq!(san.violation_count, 0);
        san.check_global(0, 64, 96); // 160 > 128
        assert_eq!(san.violation_count, 1);
        assert!(matches!(
            san.violations[0],
            SanitizerViolation::GlobalOutOfBounds { footprint: 128, .. }
        ));
    }

    #[test]
    fn memcheck_flags_undeclared_slot() {
        let mut san = BlockSan::for_kernel(&[spec(0, "x", 128)], 0, true);
        san.check_global(3, 0, 4);
        assert!(matches!(
            san.violations[0],
            SanitizerViolation::UndeclaredBuffer { slot: 3 }
        ));
    }

    #[test]
    fn aligncheck_only_fires_on_vectors() {
        let mut san = BlockSan::for_kernel(&[spec(0, "x", 1024)], 0, true);
        san.check_align(0, 20, 1, 4); // scalar: any address is legal
        assert_eq!(san.violation_count, 0);
        san.check_align(0, 16, 4, 4); // vec4 f32 at 16: aligned
        assert_eq!(san.violation_count, 0);
        san.check_align(0, 20, 4, 4); // vec4 f32 at 20: misaligned
        assert!(matches!(
            san.violations[0],
            SanitizerViolation::Misaligned {
                byte_addr: 20,
                vec_width: 4,
                elem_bytes: 4,
                ..
            }
        ));
    }

    #[test]
    fn barrier_epochs_catch_store_load_hazard() {
        let mut san = BlockSan::for_kernel(&[], 4096, true);
        san.note_smem_store(128, SmemScope::Block);
        san.note_barrier();
        san.note_smem_load(SmemScope::Block); // synced: fine
        assert_eq!(san.violation_count, 0);
        san.note_smem_store(128, SmemScope::Block);
        san.note_smem_load(SmemScope::Block); // same epoch: hazard
        assert!(matches!(
            san.violations[0],
            SanitizerViolation::MissingBarrier { epoch: 1 }
        ));
        // Deduped within the epoch.
        san.note_smem_load(SmemScope::Block);
        assert_eq!(san.violation_count, 1);
    }

    #[test]
    fn warp_scope_and_single_warp_blocks_are_exempt() {
        let mut warp = BlockSan::for_kernel(&[], 4096, true);
        warp.note_smem_store(128, SmemScope::Warp);
        warp.note_smem_load(SmemScope::Warp);
        assert_eq!(warp.violation_count, 0);

        let mut single = BlockSan::for_kernel(&[], 4096, false);
        single.note_smem_store(128, SmemScope::Block);
        single.note_smem_load(SmemScope::Block);
        assert_eq!(single.violation_count, 0);
    }

    #[test]
    fn stage_overflow_is_per_epoch() {
        let mut san = BlockSan::for_kernel(&[], 256, true);
        san.note_smem_store(200, SmemScope::Block);
        assert_eq!(san.violation_count, 0);
        san.note_barrier();
        san.note_smem_store(200, SmemScope::Block); // new epoch: fine again
        assert_eq!(san.violation_count, 0);
        san.note_smem_store(100, SmemScope::Block); // 300 > 256 within one epoch
        assert!(matches!(
            san.violations[0],
            SanitizerViolation::SharedStageOverflow {
                stored_bytes: 300,
                smem_bytes: 256
            }
        ));
    }

    #[test]
    fn report_caps_examples_but_counts_all() {
        let mut report = SanitizerReport::new("k".into(), 1);
        let mut san = BlockSan::for_kernel(&[spec(0, "x", 4)], 0, true);
        for _ in 0..100 {
            san.check_global(0, 8, 4);
        }
        report.absorb_block(san);
        assert_eq!(report.violation_count, 100);
        assert!(report.violations.len() <= MAX_REPORTED);
        assert!(!report.clean());
    }

    #[test]
    fn lints_are_warnings_not_violations() {
        let mut san = BlockSan::for_kernel(&[spec(0, "x", 1 << 20)], 0, true);
        san.note_bank_conflict(2); // mild: below threshold
        san.note_bank_conflict(16);
        san.note_uncoalesced(0, 32, 32);
        san.note_uncoalesced(0, 8, 8); // too few lanes to matter
        assert_eq!(san.violation_count, 0);
        assert_eq!(san.warning_count, 2);
        let mut report = SanitizerReport::new("k".into(), 1);
        report.absorb_block(san);
        assert!(report.clean());
        assert_eq!(report.warning_count, 2);
    }
}
