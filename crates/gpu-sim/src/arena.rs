//! Thread-local scratch arenas for kernel staging buffers.
//!
//! A CUDA kernel stages operands in shared memory: storage that exists for
//! the lifetime of one thread block and is recycled by the next block on the
//! same SM. The simulator's functional kernel bodies used to model that
//! storage with per-block `vec!` allocations — correct, but it put a heap
//! round-trip on every simulated block, and the functional path executes
//! millions of blocks per sweep.
//!
//! This module gives each rayon worker thread a small pool of reusable
//! buffers. A kernel checks a buffer out for the duration of one block
//! (through [`BlockContext::scratch_f32`](crate::BlockContext::scratch_f32)
//! or the free functions here) and the buffer returns to the pool when the
//! guard drops — exactly the shared-memory lifetime. After a short warm-up
//! (each worker growing its pooled buffers to the largest block it has
//! seen), block execution performs **zero heap allocations**; the
//! `zero_alloc` integration test enforces this.
//!
//! Ownership rules, mirroring CUDA shared memory:
//!
//! 1. A checkout is block-scoped: guards must not outlive `execute_block`
//!    (they cannot — the guard borrows nothing, but storing one would defeat
//!    the pool, so don't).
//! 2. A fresh checkout is zero-initialized (`scratch_f32`) or empty with
//!    retained capacity (`scratch_u64`): no data leaks between blocks, just
//!    as `__shared__` contents are undefined across blocks and must be
//!    written before being read.
//! 3. Checkouts nest: a block may hold several buffers at once (accumulator
//!    tile + gather-address list); they return to the pool LIFO.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

/// Pool size cap per thread and element type. Blocks hold at most a few
/// buffers at a time; anything beyond this would be a leak of the pattern.
const MAX_POOLED: usize = 16;

/// Count of heap-backed checkouts that could not be served from the pool
/// (pool empty — the buffer had to be freshly allocated). Strictly
/// monotonic; the zero-alloc test and `funcwall` read deltas of it.
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);

/// Total checkouts served (hits + misses), for the `funcwall` report.
static CHECKOUTS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static F32_POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
    static U64_POOL: RefCell<Vec<Vec<u64>>> = const { RefCell::new(Vec::new()) };
}

/// Checkouts served since process start (pool hits + misses).
pub fn checkouts() -> u64 {
    CHECKOUTS.load(Ordering::Relaxed)
}

/// Checkouts that required a fresh heap allocation (empty pool).
pub fn pool_misses() -> u64 {
    POOL_MISSES.load(Ordering::Relaxed)
}

/// A pooled `f32` staging buffer, zeroed to `len` on checkout. Derefs to
/// `[f32]`; returns to the per-thread pool on drop.
#[derive(Debug)]
pub struct ScratchF32 {
    buf: Vec<f32>,
}

impl ScratchF32 {
    /// Check out a zero-initialized buffer of exactly `len` elements.
    pub fn take(len: usize) -> Self {
        CHECKOUTS.fetch_add(1, Ordering::Relaxed);
        let mut buf = F32_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_else(|| {
            POOL_MISSES.fetch_add(1, Ordering::Relaxed);
            Vec::new()
        });
        buf.clear();
        buf.resize(len, 0.0);
        Self { buf }
    }
}

impl Deref for ScratchF32 {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl DerefMut for ScratchF32 {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for ScratchF32 {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        F32_POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < MAX_POOLED {
                pool.push(buf);
            }
        });
    }
}

/// A pooled `u64` list (gather-address staging). Checked out **empty** with
/// retained capacity; callers `push` into it. Derefs to `Vec<u64>`.
#[derive(Debug)]
pub struct ScratchU64 {
    buf: Vec<u64>,
}

impl ScratchU64 {
    /// Check out an empty list with at least `cap` reserved elements.
    pub fn take(cap: usize) -> Self {
        CHECKOUTS.fetch_add(1, Ordering::Relaxed);
        let mut buf = U64_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_else(|| {
            POOL_MISSES.fetch_add(1, Ordering::Relaxed);
            Vec::new()
        });
        buf.clear();
        if buf.capacity() < cap {
            buf.reserve(cap - buf.capacity());
        }
        Self { buf }
    }
}

impl Deref for ScratchU64 {
    type Target = Vec<u64>;
    fn deref(&self) -> &Vec<u64> {
        &self.buf
    }
}

impl DerefMut for ScratchU64 {
    fn deref_mut(&mut self) -> &mut Vec<u64> {
        &mut self.buf
    }
}

impl Drop for ScratchU64 {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        U64_POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < MAX_POOLED {
                pool.push(buf);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_f32_is_zeroed_after_reuse() {
        {
            let mut s = ScratchF32::take(8);
            for v in s.iter_mut() {
                *v = 7.0;
            }
        }
        let s = ScratchF32::take(8);
        assert!(s.iter().all(|&v| v == 0.0), "reused buffer must be zeroed");
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn scratch_f32_reuses_capacity() {
        {
            let _ = ScratchF32::take(1024);
        }
        let misses_before = pool_misses();
        let s = ScratchF32::take(512);
        assert_eq!(s.len(), 512);
        assert_eq!(
            pool_misses(),
            misses_before,
            "second checkout on the same thread must hit the pool"
        );
    }

    #[test]
    fn scratch_u64_starts_empty_with_capacity() {
        {
            let mut s = ScratchU64::take(4);
            s.push(1);
            s.push(2);
        }
        let s = ScratchU64::take(4);
        assert!(s.is_empty(), "reused list must be cleared");
        assert!(s.capacity() >= 4);
    }

    #[test]
    fn nested_checkouts_are_independent() {
        let mut a = ScratchF32::take(4);
        let mut b = ScratchF32::take(4);
        a[0] = 1.0;
        b[0] = 2.0;
        assert_eq!(a[0], 1.0);
        assert_eq!(b[0], 2.0);
    }
}
