//! The kernel abstraction: what a "CUDA kernel" looks like to the simulator.

use crate::cache::BufferSpec;
use crate::cost::BlockContext;
use crate::dim::Dim3;
use crate::occupancy::BlockRequirements;
use crate::static_check::StaticFacts;

/// A simulated GPU kernel.
///
/// Implementors provide the launch configuration (grid/block dims, shared
/// memory, register pressure) and a per-thread-block body. The body is
/// executed once per block in the grid — functionally computing the block's
/// outputs (when the launch is functional) and recording the block's
/// instruction/memory cost trace through the [`BlockContext`].
///
/// Blocks must be independent: the launcher may execute them in any order
/// and in parallel, exactly as the hardware would.
pub trait Kernel: Sync {
    /// Kernel name for reports (e.g. `"sputnik_spmm_f32_n32_v4"`).
    fn name(&self) -> String;

    /// Grid dimensions (thread blocks along x/y/z).
    fn grid(&self) -> Dim3;

    /// Block dimensions (threads along x/y/z).
    fn block_dim(&self) -> Dim3;

    /// Dynamic + static shared memory per block, in bytes.
    fn shared_mem_bytes(&self) -> u32 {
        0
    }

    /// Registers per thread (determines occupancy alongside shared memory).
    fn regs_per_thread(&self) -> u32 {
        32
    }

    /// The device buffers this kernel touches, with footprints for the cache
    /// model.
    fn buffers(&self) -> Vec<BufferSpec>;

    /// Execute one thread block. `block` is the block index within the grid.
    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext);

    /// A structural signature of this block's *cost trace*: two blocks with
    /// equal signatures must record bit-identical [`BlockCost`]s from
    /// `execute_block` (instruction counts, sector counts, stalls — the
    /// functional output may of course differ). Profile-mode launches
    /// execute one representative per signature and replay its cost for the
    /// others, which is how dataset-scale sweeps skip the long tail of
    /// structurally repeated blocks.
    ///
    /// Soundness is the implementor's burden: the signature must cover every
    /// input the trace depends on, including address *alignment* classes
    /// (sector counts change with `addr % 32`). Return `None` (the default)
    /// for blocks whose cost cannot be cheaply summarized — those execute
    /// normally. Functional and sanitized launches never consult this.
    ///
    /// [`BlockCost`]: crate::cost::BlockCost
    fn block_signature(&self, _block: Dim3) -> Option<u64> {
        None
    }

    /// Corrupt this kernel's functional output with non-finite values, as a
    /// silent data-corruption fault would. Called by the launcher when a
    /// [`FaultPlan`](crate::fault::FaultPlan) injects
    /// [`FaultKind::PoisonOutput`](crate::fault::FaultKind) on a functional
    /// launch; `seed` makes the corruption pattern deterministic. The default
    /// is a no-op: kernels that do not opt in simply cannot be poisoned.
    fn poison_output(&self, _seed: u64) {}

    /// Whether this kernel accumulates its output with device atomics
    /// (e.g. `atomicAdd`-style CAS loops). Atomic kernels legitimately have
    /// multiple blocks touching the same output index, so the sanitizer's
    /// cross-block racecheck is skipped for them; every other check still
    /// runs.
    fn atomic_output(&self) -> bool {
        false
    }

    /// Declarative facts for the static launch auditor
    /// ([`crate::static_check::audit`]): sound access-extent bounds,
    /// worst-case vector residue classes, barrier discipline, and staging
    /// bounds. The default declares nothing, which audits every
    /// data-dependent check to `NeedsDynamic` — always sound, never fast.
    /// Like [`Kernel::block_signature`], soundness of a non-default
    /// declaration is the implementor's burden; `static_audit` and
    /// `sanitize_all` cross-check it against the dynamic sanitizer in CI.
    fn static_facts(&self) -> StaticFacts {
        StaticFacts::conservative()
    }

    /// Derived per-block resource requirements.
    fn block_requirements(&self) -> BlockRequirements {
        BlockRequirements {
            threads: self.block_dim().size() as u32,
            smem_bytes: self.shared_mem_bytes(),
            regs_per_thread: self.regs_per_thread(),
        }
    }
}
