//! Cross-block cache reuse estimation.
//!
//! Kernels record how many sectors they *request* per buffer; how much of
//! that reaches DRAM depends on reuse captured by the L2 (and, secondarily,
//! per-SM L1s). For SpMM this is the crucial effect: every nonzero in the
//! sparse matrix triggers a load of a dense-matrix row strip, so the same B
//! row is requested once per nonzero in the corresponding column of A.
//! At deep-learning sparsities (70–95%) those repeats mostly hit in cache;
//! at scientific sparsities (99.9%) they mostly miss. This asymmetry is why
//! the paper's Figure 1 crossover exists and why lower sparsity "opens up
//! opportunities for the reuse of operands through caches" (Section II).
//!
//! Model: per buffer, given requested bytes `A` and unique footprint `F`,
//! the reuse volume is `A - F`. The fraction of reuse captured is the
//! probability that a line survives in the cache between consecutive uses,
//! approximated by the classic capacity argument `min(1, C_eff / F)` where
//! `C_eff` is this buffer's share of L2 (apportioned by request volume),
//! times a reuse-efficiency constant that accounts for scheduling spread.

use crate::cost::{Traffic, MAX_BUFFERS};
use crate::device::DeviceConfig;
use serde::{Deserialize, Serialize};

/// How a kernel accesses a buffer — guides the reuse estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Each byte is touched approximately once (e.g. CSR values/indices in
    /// SpMM, the output matrix). Reuse volume is assumed zero beyond
    /// intra-warp coalescing, which sector counting already captured.
    Streaming,
    /// Bytes are touched repeatedly by different blocks/subwarps (e.g. the
    /// dense B operand of SpMM, both dense operands of SDDMM).
    SharedReuse,
}

/// Declares one device buffer to the launcher.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BufferSpec {
    /// Slot in the kernel's traffic table.
    pub id: crate::cost::BufferId,
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Unique bytes this kernel can possibly touch in the buffer
    /// (the footprint — e.g. `K * N * 4` for the B matrix).
    pub footprint_bytes: u64,
    /// Access pattern classification.
    pub pattern: AccessPattern,
}

/// Fraction of inter-block reuse that the cache hierarchy can capture even
/// under perfect capacity conditions (scheduling spread, associativity
/// conflicts). Calibrated against the paper's corpus-level speedups.
const REUSE_EFFICIENCY: f64 = 0.92;

/// Per-buffer DRAM traffic after cache filtering.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DramTraffic {
    /// DRAM bytes loaded per buffer.
    pub ld_bytes: [u64; MAX_BUFFERS],
    /// DRAM bytes stored per buffer (stores are write-through to DRAM here;
    /// write-back subtleties are below the model's resolution).
    pub st_bytes: [u64; MAX_BUFFERS],
    /// Per-buffer miss rate for loads (DRAM bytes / requested bytes).
    pub ld_miss_rate: [f64; MAX_BUFFERS],
}

impl DramTraffic {
    pub fn total_bytes(&self) -> u64 {
        self.ld_bytes.iter().sum::<u64>() + self.st_bytes.iter().sum::<u64>()
    }
}

/// Estimate DRAM traffic from aggregate per-buffer requested sectors.
pub fn dram_traffic(
    dev: &DeviceConfig,
    buffers: &[BufferSpec],
    requested: &[Traffic; MAX_BUFFERS],
) -> DramTraffic {
    let mut out = DramTraffic::default();
    for rate in out.ld_miss_rate.iter_mut() {
        *rate = 1.0;
    }

    // Apportion L2 capacity among reused buffers by request volume.
    let total_reused_requests: u64 = buffers
        .iter()
        .filter(|b| b.pattern == AccessPattern::SharedReuse)
        .map(|b| requested[b.id.0 as usize].ld_bytes())
        .sum();

    for spec in buffers {
        let slot = spec.id.0 as usize;
        let req = requested[slot];
        let requested_ld = req.ld_bytes();
        let requested_st = req.st_bytes();

        match spec.pattern {
            AccessPattern::Streaming => {
                // Requested sectors go straight to DRAM; there is no reuse to
                // capture. (Compulsory-traffic: already minimal.)
                out.ld_bytes[slot] = requested_ld;
                out.st_bytes[slot] = requested_st;
                out.ld_miss_rate[slot] = 1.0;
            }
            AccessPattern::SharedReuse => {
                let footprint = spec.footprint_bytes.max(1);
                // Compulsory misses can't exceed what was actually requested.
                let compulsory = footprint.min(requested_ld);
                let reuse_volume = requested_ld.saturating_sub(compulsory);

                let share = if total_reused_requests > 0 {
                    requested_ld as f64 / total_reused_requests as f64
                } else {
                    1.0
                };
                let capacity = dev.l2_bytes as f64 * share
                    + dev.l1_bytes_per_sm as f64 * dev.num_sms as f64 * 0.25 * share;
                let captured_frac = (capacity / footprint as f64).min(1.0) * REUSE_EFFICIENCY;
                let reuse_misses = (reuse_volume as f64 * (1.0 - captured_frac)).round() as u64;

                let dram = compulsory + reuse_misses;
                out.ld_bytes[slot] = dram;
                out.st_bytes[slot] = requested_st;
                out.ld_miss_rate[slot] = if requested_ld > 0 {
                    dram as f64 / requested_ld as f64
                } else {
                    1.0
                };
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{BufferId, Traffic};

    fn spec(id: u8, footprint: u64, pattern: AccessPattern) -> BufferSpec {
        BufferSpec {
            id: BufferId(id),
            name: "t",
            footprint_bytes: footprint,
            pattern,
        }
    }

    fn req(ld: u64) -> Traffic {
        Traffic {
            ld_sectors: ld / 32,
            st_sectors: 0,
        }
    }

    #[test]
    fn streaming_passes_through() {
        let dev = DeviceConfig::v100();
        let buffers = [spec(0, 1 << 20, AccessPattern::Streaming)];
        let mut t = [Traffic::default(); MAX_BUFFERS];
        t[0] = req(1 << 20);
        let d = dram_traffic(&dev, &buffers, &t);
        assert_eq!(d.ld_bytes[0], 1 << 20);
        assert_eq!(d.ld_miss_rate[0], 1.0);
    }

    #[test]
    fn small_footprint_reuse_is_captured() {
        let dev = DeviceConfig::v100();
        // 1 MiB footprint requested 100x: fits in 6 MiB L2, nearly all reuse hits.
        let buffers = [spec(0, 1 << 20, AccessPattern::SharedReuse)];
        let mut t = [Traffic::default(); MAX_BUFFERS];
        t[0] = req(100 << 20);
        let d = dram_traffic(&dev, &buffers, &t);
        let miss = d.ld_miss_rate[0];
        assert!(miss < 0.12, "expected high hit rate, miss = {miss}");
        assert!(d.ld_bytes[0] >= 1 << 20, "at least compulsory traffic");
    }

    #[test]
    fn huge_footprint_reuse_is_lost() {
        let dev = DeviceConfig::v100();
        // 1 GiB footprint requested 4x: L2 captures almost nothing.
        let buffers = [spec(0, 1 << 30, AccessPattern::SharedReuse)];
        let mut t = [Traffic::default(); MAX_BUFFERS];
        t[0] = req(4 << 30);
        let d = dram_traffic(&dev, &buffers, &t);
        assert!(d.ld_miss_rate[0] > 0.95, "miss = {}", d.ld_miss_rate[0]);
    }

    #[test]
    fn miss_rate_monotone_in_footprint() {
        let dev = DeviceConfig::v100();
        let mut t = [Traffic::default(); MAX_BUFFERS];
        t[0] = req(256 << 20);
        let mut prev = 0.0;
        for fp_mb in [1u64, 4, 16, 64, 256] {
            let buffers = [spec(0, fp_mb << 20, AccessPattern::SharedReuse)];
            let d = dram_traffic(&dev, &buffers, &t);
            assert!(d.ld_miss_rate[0] >= prev - 1e-12, "fp={fp_mb}MiB");
            prev = d.ld_miss_rate[0];
        }
    }
}
