//! A trace-driven set-associative LRU cache simulator.
//!
//! The launcher's reuse estimation ([`crate::cache`]) is analytic — it never
//! sees individual addresses, which is what lets it scale to corpus-sized
//! sweeps. This module is the slow, exact counterpart: feed it a sector
//! trace and it reports true hit/miss counts under LRU replacement. It is
//! used by tests to validate the analytic model's behaviour on small
//! kernels, and is available to users who want to study a specific access
//! pattern precisely.

use crate::memory::SECTOR_BYTES;
use serde::{Deserialize, Serialize};

/// Configuration of a simulated cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Line size in bytes (GPU L2 tracks 32-byte sectors; 128-byte lines are
    /// typical for CPU-style analyses).
    pub line_bytes: u64,
    /// Associativity (ways per set). Use `usize::MAX`-like large values for
    /// fully associative behaviour; must divide the line count.
    pub ways: usize,
}

impl CacheConfig {
    /// The V100 L2 as sectors: 6 MiB, 32-byte sectors, 16-way.
    pub fn v100_l2() -> Self {
        Self {
            capacity_bytes: 6 * 1024 * 1024,
            line_bytes: SECTOR_BYTES,
            ways: 16,
        }
    }

    /// One SM's 128 KiB L1 slice.
    pub fn v100_l1() -> Self {
        Self {
            capacity_bytes: 128 * 1024,
            line_bytes: SECTOR_BYTES,
            ways: 4,
        }
    }

    fn num_lines(&self) -> usize {
        (self.capacity_bytes / self.line_bytes) as usize
    }

    fn num_sets(&self) -> usize {
        (self.num_lines() / self.ways).max(1)
    }
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    pub accesses: u64,
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.hits as f64 / self.accesses as f64
    }

    pub fn miss_bytes(&self, line_bytes: u64) -> u64 {
        self.misses * line_bytes
    }
}

/// A set-associative LRU cache over byte addresses.
///
/// LRU state is a per-line timestamp — O(ways) per access, which is fine for
/// the small associativities GPUs use.
pub struct CacheSim {
    cfg: CacheConfig,
    /// tags[set * ways + way]; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Last-use tick per line.
    stamps: Vec<u64>,
    tick: u64,
    stats: CacheStats,
}

impl CacheSim {
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.ways >= 1);
        assert!(
            cfg.num_lines() >= cfg.ways,
            "capacity must hold at least one set"
        );
        let lines = cfg.num_sets() * cfg.ways;
        Self {
            cfg,
            tags: vec![u64::MAX; lines],
            stamps: vec![0; lines],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Access one byte address; returns true on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let line = addr / self.cfg.line_bytes;
        let set = (line % self.cfg.num_sets() as u64) as usize;
        let base = set * self.cfg.ways;
        let ways = &mut self.tags[base..base + self.cfg.ways];

        // Hit?
        for (w, &tag) in ways.iter().enumerate() {
            if tag == line {
                self.stamps[base + w] = self.tick;
                self.stats.hits += 1;
                return true;
            }
        }
        // Miss: evict LRU way.
        self.stats.misses += 1;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.cfg.ways {
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if self.stamps[base + w] < oldest {
                oldest = self.stamps[base + w];
                victim = w;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.tick;
        false
    }

    /// Access a contiguous byte range (each touched line once).
    pub fn access_range(&mut self, addr: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let first = addr / self.cfg.line_bytes;
        let last = (addr + bytes - 1) / self.cfg.line_bytes;
        for line in first..=last {
            self.access(line * self.cfg.line_bytes);
        }
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(capacity: u64, ways: usize) -> CacheSim {
        CacheSim::new(CacheConfig {
            capacity_bytes: capacity,
            line_bytes: 32,
            ways,
        })
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny(1024, 4);
        assert!(!c.access(0), "cold miss");
        assert!(c.access(0), "then hit");
        assert!(c.access(4), "same line hits");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn working_set_within_capacity_fully_hits_after_warmup() {
        let mut c = tiny(4096, 4); // 128 lines
        for pass in 0..3 {
            for line in 0..64u64 {
                let hit = c.access(line * 32);
                if pass > 0 {
                    assert!(hit, "pass {pass} line {line} must hit");
                }
            }
        }
        assert_eq!(c.stats().misses, 64, "only compulsory misses");
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_under_lru() {
        // Sequential sweep over 2x capacity with LRU: every access misses.
        let mut c = tiny(1024, 2); // 32 lines
        for _ in 0..4 {
            for line in 0..64u64 {
                c.access(line * 32);
            }
        }
        assert_eq!(
            c.stats().hits,
            0,
            "cyclic sweep > capacity never hits under LRU"
        );
    }

    #[test]
    fn associativity_conflicts() {
        // Direct-mapped: two lines mapping to the same set evict each other.
        let mut c = tiny(1024, 1); // 32 sets
        let stride = 32 * 32; // same set
        for _ in 0..4 {
            c.access(0);
            c.access(stride);
        }
        assert_eq!(
            c.stats().hits,
            0,
            "conflict misses in a direct-mapped cache"
        );
        // 2-way tolerates the pair.
        let mut c2 = tiny(1024, 2);
        for _ in 0..4 {
            c2.access(0);
            c2.access(1024); // 16 sets, stride 512B -> set 0 again? 1024/32=32 lines %16 = 0: same set.
        }
        assert_eq!(c2.stats().misses, 2, "2-way holds both lines");
    }

    #[test]
    fn access_range_touches_each_line_once() {
        let mut c = tiny(4096, 4);
        c.access_range(16, 96); // straddles lines 0..=3
        assert_eq!(c.stats().accesses, 4);
        c.access_range(0, 32);
        assert_eq!(c.stats().hits, 1);
    }

    /// The analytic model's miss estimate brackets the exact simulation on a
    /// synthetic SpMM-like B-row reuse trace.
    #[test]
    fn analytic_model_brackets_exact_simulation() {
        use crate::cache::{dram_traffic, AccessPattern, BufferSpec};
        use crate::cost::{BufferId, Traffic, MAX_BUFFERS};

        // Trace: 512 "rows" of B (256 bytes each = footprint 128 KiB), each
        // requested 20 times in a scattered order — comfortably inside a
        // 6 MiB L2.
        let mut sim = CacheSim::new(CacheConfig::v100_l2());
        let rows = 512u64;
        let row_bytes = 256u64;
        let repeats = 20u64;
        for rep in 0..repeats {
            for i in 0..rows {
                let row = (i * 769 + rep * 37) % rows; // scattered but complete
                sim.access_range(row * row_bytes, row_bytes);
            }
        }
        let exact_miss_rate = 1.0 - sim.stats().hit_rate();

        let dev = crate::device::DeviceConfig::v100();
        let buffers = [BufferSpec {
            id: BufferId(0),
            name: "b",
            footprint_bytes: rows * row_bytes,
            pattern: AccessPattern::SharedReuse,
        }];
        let mut req = [Traffic::default(); MAX_BUFFERS];
        req[0].ld_sectors = rows * row_bytes / 32 * repeats;
        let analytic = dram_traffic(&dev, &buffers, &req);
        let analytic_miss_rate = analytic.ld_miss_rate[0];

        // Exact: ~1/repeats (compulsory only). Analytic must land within a
        // small constant factor.
        assert!(exact_miss_rate < 0.1, "exact {exact_miss_rate}");
        assert!(
            analytic_miss_rate < 4.0 * exact_miss_rate + 0.1,
            "analytic {analytic_miss_rate} vs exact {exact_miss_rate}"
        );
    }
}
