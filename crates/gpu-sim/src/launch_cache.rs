//! Cross-launch memoization of simulated launch statistics.
//!
//! The evaluation sweeps (dataset benchmarks, autotuning grids, the dispatch
//! ladder) re-simulate the same kernel on the same operands over and over.
//! [`LaunchCache`] memoizes [`LaunchStats`] across launches, keyed by the
//! kernel name (which encodes the configuration tag), a caller-supplied
//! operand fingerprint, and the device name.
//!
//! ## What the key must cover
//!
//! Simulated statistics depend on the kernel's *cost trace*, which is a
//! function of the launch configuration and the operand **structure** —
//! shapes, sparsity topology, alignment — but not of the floating-point
//! values flowing through it. The kernel name covers the configuration; the
//! device name covers the hardware model; the `fingerprint` must cover
//! everything else the trace reads: the sparse topology (row offsets, column
//! indices) *and* any problem dimension not implied by it (e.g. SpMM's dense
//! column count `n`, which the kernel name does not encode).
//!
//! ## Functional launches
//!
//! A cache hit on a functional launch still has to produce outputs. The
//! launcher re-executes every block with a cost-recording-disabled context
//! ([`BlockContext::replay`](crate::cost::BlockContext::replay)), skipping
//! the sector/conflict arithmetic while the kernel writes its results, and
//! returns the cached statistics.
//!
//! ## When the cache is bypassed
//!
//! Launches on a [`Gpu`](crate::Gpu) carrying a fault plan bypass the cache
//! entirely (no lookup, no insert): fault schedules consume per-launch
//! indices and may poison outputs, so serving them from a cache would both
//! skip scheduled faults and desynchronize the schedule.

use crate::launch::LaunchStats;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cache key: (kernel name incl. config tag, operand fingerprint, device).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LaunchKey {
    pub kernel: String,
    pub fingerprint: u64,
    pub device: String,
}

/// A thread-safe memo table of simulated launch statistics.
///
/// Shared by `&` reference (interior mutability), so one cache can serve an
/// entire benchmark sweep or a whole dispatch ladder without plumbing `&mut`
/// through every call site.
#[derive(Debug, Default)]
pub struct LaunchCache {
    entries: Mutex<HashMap<LaunchKey, LaunchStats>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl LaunchCache {
    pub fn new() -> Self {
        Self::default()
    }

    fn entries(&self) -> std::sync::MutexGuard<'_, HashMap<LaunchKey, LaunchStats>> {
        // A poisoned mutex only means another thread panicked mid-insert;
        // the map itself is still a valid memo table.
        match self.entries.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Look up a key, counting the hit or miss.
    pub fn lookup(&self, key: &LaunchKey) -> Option<LaunchStats> {
        let found = self.entries().get(key).cloned();
        match found {
            Some(stats) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(stats)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Record freshly simulated statistics under a key.
    pub fn insert(&self, key: LaunchKey, stats: LaunchStats) {
        self.entries().insert(key, stats);
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.entries().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries().is_empty()
    }

    /// Drop all entries and reset the counters.
    pub fn clear(&self) {
        self.entries().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::LaunchStats;

    fn dummy_stats(us: f64) -> LaunchStats {
        LaunchStats {
            kernel: "k".into(),
            time_us: us,
            makespan_cycles: 0.0,
            blocks: 1,
            waves: 1.0,
            balance: 1.0,
            occupancy: crate::occupancy::occupancy(
                &crate::device::DeviceConfig::v100(),
                &crate::occupancy::BlockRequirements {
                    threads: 32,
                    smem_bytes: 0,
                    regs_per_thread: 32,
                },
            ),
            instructions: 1,
            flops: 2,
            dram_bytes: 3,
            tflops: 0.0,
            frac_peak: 0.0,
            dram_gbps: 0.0,
            bound_by: "dram".into(),
            pipelines: Default::default(),
        }
    }

    fn key(fp: u64) -> LaunchKey {
        LaunchKey {
            kernel: "k".into(),
            fingerprint: fp,
            device: "V100".into(),
        }
    }

    #[test]
    fn hit_and_miss_counters() {
        let cache = LaunchCache::new();
        assert!(cache.lookup(&key(1)).is_none());
        cache.insert(key(1), dummy_stats(10.0));
        let hit = cache.lookup(&key(1)).expect("inserted");
        assert_eq!(hit.time_us, 10.0);
        assert!(cache.lookup(&key(2)).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keys_distinguish_all_components() {
        let cache = LaunchCache::new();
        cache.insert(key(1), dummy_stats(1.0));
        let mut other_kernel = key(1);
        other_kernel.kernel = "k2".into();
        let mut other_dev = key(1);
        other_dev.device = "A100".into();
        assert!(cache.lookup(&other_kernel).is_none());
        assert!(cache.lookup(&other_dev).is_none());
        assert!(cache.lookup(&key(2)).is_none());
        assert!(cache.lookup(&key(1)).is_some());
    }

    #[test]
    fn clear_resets_everything() {
        let cache = LaunchCache::new();
        cache.insert(key(1), dummy_stats(1.0));
        let _ = cache.lookup(&key(1));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
    }
}
