//! Cross-launch memoization of simulated launch statistics.
//!
//! The evaluation sweeps (dataset benchmarks, autotuning grids, the dispatch
//! ladder) re-simulate the same kernel on the same operands over and over.
//! [`LaunchCache`] memoizes [`LaunchStats`] across launches, keyed by the
//! kernel name (which encodes the configuration tag), a caller-supplied
//! operand fingerprint, and the device name.
//!
//! ## What the key must cover
//!
//! Simulated statistics depend on the kernel's *cost trace*, which is a
//! function of the launch configuration and the operand **structure** —
//! shapes, sparsity topology, alignment — but not of the floating-point
//! values flowing through it. The kernel name covers the configuration; the
//! device name covers the hardware model; the `fingerprint` must cover
//! everything else the trace reads: the sparse topology (row offsets, column
//! indices) *and* any problem dimension not implied by it (e.g. SpMM's dense
//! column count `n`, which the kernel name does not encode).
//!
//! ## Capacity and eviction
//!
//! Dataset sweeps can touch tens of thousands of distinct keys; an unbounded
//! memo table would grow with the corpus. The cache holds at most
//! `capacity` entries ([`LaunchCache::with_capacity`]; the default is
//! [`DEFAULT_CAPACITY`]). When an insert would exceed it, the
//! least-recently-used *half* of the entries is evicted in one generation
//! sweep — amortized O(1) per insert, no per-lookup bookkeeping beyond a
//! recency tick — and the [`LaunchCache::evictions`] counter records the
//! drops (also surfaced on [`crate::LaunchSummary`]).
//!
//! ## Functional launches
//!
//! A cache hit on a functional launch still has to produce outputs. The
//! launcher re-executes every block with a cost-recording-disabled context
//! ([`BlockContext::replay`](crate::cost::BlockContext::replay)), skipping
//! the sector/conflict arithmetic while the kernel writes its results, and
//! returns the cached statistics.
//!
//! ## When the cache is bypassed
//!
//! Launches on a [`Gpu`](crate::Gpu) carrying a fault plan bypass the cache
//! entirely (no lookup, no insert): fault schedules consume per-launch
//! indices and may poison outputs, so serving them from a cache would both
//! skip scheduled faults and desynchronize the schedule.

use crate::launch::LaunchStats;
use crate::sanitizer::SanitizerReport;
use crate::{metrics, trace};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default entry capacity: comfortably above any single sweep's working set
/// (the full-grid `simwall` run populates a few hundred keys) while bounding
/// a corpus-scale sweep's memory.
pub const DEFAULT_CAPACITY: usize = 8192;

/// Cache key: (kernel name incl. config tag, operand fingerprint, device
/// name, device architecture).
///
/// The `arch` field is the structural hash of every architectural field of
/// the device config ([`crate::DeviceConfig::arch_fingerprint`]). The name
/// alone is not an identity: a heterogeneous fleet can legitimately hold two
/// devices with the same marketing name but different resources (a stock
/// V100 next to a cut-down one), and simulated statistics depend on the
/// resources, not the label. With `arch` in the key, replay can never
/// cross-pollinate between device profiles.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LaunchKey {
    pub kernel: String,
    pub fingerprint: u64,
    pub device: String,
    pub arch: u64,
}

#[derive(Debug)]
struct Entry {
    stats: LaunchStats,
    /// The sanitizer report from a prior sanitized run of this exact
    /// (kernel, fingerprint, device) launch, if one happened. The sanitizer
    /// checks the cost trace, which the key fully determines — so a
    /// fingerprint-identical launch needs no re-sanitizing.
    sanitized: Option<SanitizerReport>,
    /// Recency tick of the last lookup hit or insert.
    last_used: u64,
}

/// A thread-safe, capacity-bounded memo table of simulated launch statistics.
///
/// Shared by `&` reference (interior mutability), so one cache can serve an
/// entire benchmark sweep or a whole dispatch ladder without plumbing `&mut`
/// through every call site.
#[derive(Debug)]
pub struct LaunchCache {
    entries: Mutex<HashMap<LaunchKey, Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    tick: AtomicU64,
    capacity: usize,
}

impl Default for LaunchCache {
    fn default() -> Self {
        Self::new()
    }
}

impl LaunchCache {
    /// A cache with the [`DEFAULT_CAPACITY`] entry bound.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A cache bounded to `capacity` entries (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    fn entries(&self) -> std::sync::MutexGuard<'_, HashMap<LaunchKey, Entry>> {
        // A poisoned mutex only means another thread panicked mid-insert;
        // the map itself is still a valid memo table.
        match self.entries.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Look up a key, counting the hit or miss and refreshing the entry's
    /// recency on a hit.
    pub fn lookup(&self, key: &LaunchKey) -> Option<LaunchStats> {
        let tick = self.next_tick();
        let found = {
            let mut map = self.entries();
            map.get_mut(key).map(|e| {
                e.last_used = tick;
                e.stats.clone()
            })
        };
        match found {
            Some(stats) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                metrics::global().incr("cache_hits", 1);
                if trace::enabled() {
                    trace::instant("cache", &key.device, &format!("hit: {}", key.kernel));
                }
                Some(stats)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                metrics::global().incr("cache_misses", 1);
                if trace::enabled() {
                    trace::instant("cache", &key.device, &format!("miss: {}", key.kernel));
                }
                None
            }
        }
    }

    /// Record freshly simulated statistics under a key, evicting the
    /// least-recently-used half of the table first when it is full. A prior
    /// sanitizer report stored under the same key survives the overwrite
    /// (the key determines the trace, so the report stays valid).
    pub fn insert(&self, key: LaunchKey, stats: LaunchStats) {
        self.insert_entry(key, stats, None);
    }

    /// Record a sanitized launch: the statistics plus the sanitizer report,
    /// so fingerprint-identical launches can skip re-sanitizing entirely
    /// (served by [`LaunchCache::lookup_sanitized`]).
    pub fn insert_sanitized(&self, key: LaunchKey, stats: LaunchStats, report: SanitizerReport) {
        self.insert_entry(key, stats, Some(report));
    }

    fn insert_entry(&self, key: LaunchKey, stats: LaunchStats, sanitized: Option<SanitizerReport>) {
        let tick = self.next_tick();
        let mut map = self.entries();
        if map.len() >= self.capacity && !map.contains_key(&key) {
            let mut ticks: Vec<u64> = map.values().map(|e| e.last_used).collect();
            ticks.sort_unstable();
            // Ticks are unique (fetch_add), so retaining strictly-newer
            // than the median drops ceil(len/2) entries in one sweep.
            let cutoff = ticks[(ticks.len() - 1) / 2];
            let before = map.len();
            map.retain(|_, e| e.last_used > cutoff);
            let evicted = (before - map.len()) as u64;
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            metrics::global().incr("cache_evictions", evicted);
        }
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                let entry = slot.get_mut();
                entry.stats = stats;
                entry.last_used = tick;
                if sanitized.is_some() {
                    entry.sanitized = sanitized;
                }
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Entry {
                    stats,
                    sanitized,
                    last_used: tick,
                });
            }
        }
        metrics::global().incr("cache_inserts", 1);
    }

    /// Look up a key that was previously [`LaunchCache::insert_sanitized`]:
    /// returns the cached statistics *and* the sanitizer report. An entry
    /// that was only ever plain-inserted is a miss — its launch was never
    /// sanitized, so there is no report to replay.
    pub fn lookup_sanitized(&self, key: &LaunchKey) -> Option<(LaunchStats, SanitizerReport)> {
        let tick = self.next_tick();
        let found = {
            let mut map = self.entries();
            map.get_mut(key).and_then(|e| {
                let report = e.sanitized.clone()?;
                e.last_used = tick;
                Some((e.stats.clone(), report))
            })
        };
        match found {
            Some(hit) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                metrics::global().incr("cache_hits", 1);
                if trace::enabled() {
                    trace::instant(
                        "cache",
                        &key.device,
                        &format!("sanitized hit: {}", key.kernel),
                    );
                }
                Some(hit)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                metrics::global().incr("cache_misses", 1);
                None
            }
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped by capacity eviction since creation (or the last
    /// [`LaunchCache::clear`]).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The entry bound this cache evicts down to.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.entries().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries().is_empty()
    }

    /// Drop all entries and reset the counters.
    pub fn clear(&self) {
        self.entries().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::LaunchStats;

    fn dummy_stats(us: f64) -> LaunchStats {
        LaunchStats {
            kernel: "k".into(),
            time_us: us,
            makespan_cycles: 0.0,
            blocks: 1,
            waves: 1.0,
            balance: 1.0,
            occupancy: crate::occupancy::occupancy(
                &crate::device::DeviceConfig::v100(),
                &crate::occupancy::BlockRequirements {
                    threads: 32,
                    smem_bytes: 0,
                    regs_per_thread: 32,
                },
            ),
            instructions: 1,
            flops: 2,
            dram_bytes: 3,
            tflops: 0.0,
            frac_peak: 0.0,
            dram_gbps: 0.0,
            bound_by: "dram".into(),
            pipelines: Default::default(),
        }
    }

    fn key(fp: u64) -> LaunchKey {
        LaunchKey {
            kernel: "k".into(),
            fingerprint: fp,
            device: "V100".into(),
            arch: 0xA4C4,
        }
    }

    #[test]
    fn hit_and_miss_counters() {
        let cache = LaunchCache::new();
        assert!(cache.lookup(&key(1)).is_none());
        cache.insert(key(1), dummy_stats(10.0));
        let hit = cache.lookup(&key(1)).expect("inserted");
        assert_eq!(hit.time_us, 10.0);
        assert!(cache.lookup(&key(2)).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keys_distinguish_all_components() {
        let cache = LaunchCache::new();
        cache.insert(key(1), dummy_stats(1.0));
        let mut other_kernel = key(1);
        other_kernel.kernel = "k2".into();
        let mut other_dev = key(1);
        other_dev.device = "A100".into();
        let mut other_arch = key(1);
        other_arch.arch = 0xBEEF;
        assert!(cache.lookup(&other_kernel).is_none());
        assert!(cache.lookup(&other_dev).is_none());
        assert!(cache.lookup(&other_arch).is_none());
        assert!(cache.lookup(&key(2)).is_none());
        assert!(cache.lookup(&key(1)).is_some());
    }

    /// Regression (heterogeneous-fleet cross-pollination): two device models
    /// sharing a marketing name but differing in resources must never serve
    /// each other's cached statistics. Before `arch` joined the key, the
    /// second device below would hit the first's entry.
    #[test]
    fn same_name_different_arch_never_cross_pollinates() {
        use crate::device::DeviceConfig;
        let stock = DeviceConfig::v100();
        let mut cut_down = DeviceConfig::v100();
        cut_down.num_sms = 40;
        assert_eq!(stock.name, cut_down.name);

        let cache = LaunchCache::new();
        let stock_key = LaunchKey {
            kernel: "k".into(),
            fingerprint: 7,
            device: stock.name.clone(),
            arch: stock.arch_fingerprint(),
        };
        let cut_key = LaunchKey {
            kernel: "k".into(),
            fingerprint: 7,
            device: cut_down.name.clone(),
            arch: cut_down.arch_fingerprint(),
        };
        cache.insert(stock_key.clone(), dummy_stats(10.0));
        assert!(
            cache.lookup(&cut_key).is_none(),
            "cut-down device must not see the stock device's entry"
        );
        cache.insert(cut_key.clone(), dummy_stats(20.0));
        let stock_hit = cache.lookup(&stock_key).expect("stock entry intact");
        let cut_hit = cache.lookup(&cut_key).expect("cut-down entry present");
        assert_eq!(stock_hit.time_us, 10.0);
        assert_eq!(cut_hit.time_us, 20.0);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = LaunchCache::with_capacity(1);
        cache.insert(key(1), dummy_stats(1.0));
        cache.insert(key(2), dummy_stats(1.0)); // evicts key 1
        let _ = cache.lookup(&key(2));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
        assert_eq!(cache.evictions(), 0);
    }

    /// Regression (unbounded growth): a 10k-distinct-key sweep must hold the
    /// table at its capacity, counting every drop.
    #[test]
    fn ten_thousand_key_sweep_is_capacity_bounded() {
        let cache = LaunchCache::with_capacity(256);
        for fp in 0..10_000 {
            cache.insert(key(fp), dummy_stats(fp as f64));
        }
        assert!(
            cache.len() <= 256,
            "cache grew past capacity: {} entries",
            cache.len()
        );
        assert!(!cache.is_empty());
        // Everything inserted beyond what the table retains was evicted.
        assert_eq!(cache.evictions(), 10_000 - cache.len() as u64);
        // The survivors are the most recent generation.
        assert!(cache.lookup(&key(9_999)).is_some());
        assert!(cache.lookup(&key(0)).is_none());
    }

    #[test]
    fn eviction_prefers_least_recently_used() {
        let cache = LaunchCache::with_capacity(4);
        for fp in 0..4 {
            cache.insert(key(fp), dummy_stats(1.0));
        }
        // Touch 0 and 1 so 2 and 3 become the LRU half.
        assert!(cache.lookup(&key(0)).is_some());
        assert!(cache.lookup(&key(1)).is_some());
        cache.insert(key(4), dummy_stats(1.0));
        assert_eq!(cache.evictions(), 2);
        assert!(cache.lookup(&key(0)).is_some(), "recently used survives");
        assert!(cache.lookup(&key(1)).is_some(), "recently used survives");
        assert!(cache.lookup(&key(2)).is_none(), "LRU half evicted");
        assert!(cache.lookup(&key(3)).is_none(), "LRU half evicted");
        assert!(cache.lookup(&key(4)).is_some(), "new entry present");
    }

    #[test]
    fn reinserting_existing_key_never_evicts() {
        let cache = LaunchCache::with_capacity(2);
        cache.insert(key(1), dummy_stats(1.0));
        cache.insert(key(2), dummy_stats(2.0));
        cache.insert(key(1), dummy_stats(3.0)); // overwrite, table full
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 2);
        let got = cache.lookup(&key(1)).expect("overwritten entry");
        assert_eq!(got.time_us, 3.0);
    }
}
