//! Memory-coalescing arithmetic.
//!
//! GPUs service global-memory warp accesses in 32-byte *sectors*. A warp
//! instruction touching N distinct sectors costs N transactions regardless of
//! how many lanes participate; perfectly coalesced accesses therefore cost
//! `ceil(bytes / 32)` transactions while strided or scattered accesses can
//! cost one transaction per lane. This module computes sector counts from
//! access descriptions so that kernels' cost traces reflect their real
//! address patterns — in particular the paper's central point that rows of a
//! CSR matrix start at arbitrarily aligned addresses (motivating ROMA).

/// Size of a DRAM/L2 sector in bytes.
pub const SECTOR_BYTES: u64 = 32;

/// Sectors touched by a contiguous byte range `[addr, addr + bytes)`.
///
/// A misaligned range straddles one more sector than an aligned one of the
/// same size, which is exactly the penalty ROMA removes by backing row
/// pointers up to an aligned address.
pub fn sectors_contiguous(addr: u64, bytes: u64) -> u64 {
    if bytes == 0 {
        return 0;
    }
    let first = addr / SECTOR_BYTES;
    let last = (addr + bytes - 1) / SECTOR_BYTES;
    last - first + 1
}

/// Sectors touched by a strided warp access: `lanes` active lanes, lane `i`
/// reading `elem_bytes` at `base + i * stride_bytes`.
///
/// With `stride_bytes == elem_bytes` this degrades to the contiguous case;
/// with large strides (e.g. column-major dense matrix walks, which is how
/// cuSPARSE lays out its dense operands) every lane hits its own sector.
pub fn sectors_strided(base: u64, lanes: u32, stride_bytes: u64, elem_bytes: u64) -> u64 {
    if lanes == 0 || elem_bytes == 0 {
        return 0;
    }
    if stride_bytes == elem_bytes {
        return sectors_contiguous(base, lanes as u64 * elem_bytes);
    }
    if stride_bytes >= SECTOR_BYTES {
        // Each lane touches its own sector(s); no overlap possible.
        let per_lane = sectors_contiguous(base, elem_bytes).max(1);
        return lanes as u64 * per_lane;
    }
    // Small stride: lanes partially share sectors. The span covered is
    // (lanes-1)*stride + elem_bytes.
    let span = (lanes as u64 - 1) * stride_bytes + elem_bytes;
    sectors_contiguous(base, span)
}

/// Sectors touched by a gather: arbitrary per-lane byte addresses, each lane
/// reading `elem_bytes`. Duplicate sectors within the warp are merged, as the
/// hardware's coalescer does.
pub fn sectors_gather(addrs: &[u64], elem_bytes: u64) -> u64 {
    debug_assert!(addrs.len() <= 32, "a warp has at most 32 lanes");
    if addrs.is_empty() {
        return 0;
    }
    // At most 64 sectors for 32 lanes of <=32B each; a tiny sort dedupes.
    let mut sectors = [0u64; 64];
    let mut n = 0;
    for &a in addrs {
        let first = a / SECTOR_BYTES;
        let last = if elem_bytes == 0 {
            first
        } else {
            (a + elem_bytes - 1) / SECTOR_BYTES
        };
        let mut s = first;
        while s <= last && n < sectors.len() {
            sectors[n] = s;
            n += 1;
            s += 1;
        }
    }
    let sectors = &mut sectors[..n];
    sectors.sort_unstable();
    let mut count = 0u64;
    let mut prev = u64::MAX;
    for &s in sectors.iter() {
        if s != prev {
            count += 1;
            prev = s;
        }
    }
    count
}

/// Number of warp-level load/store *instructions* needed for `total_elems`
/// elements spread over `lanes` lanes with `vec_width`-element vector
/// accesses. This is the instruction-count savings the paper's vector memory
/// operations (Section V-B) provide: a 4-wide load quarters the instructions.
pub fn vector_instr_count(total_elems: u64, lanes: u32, vec_width: u32) -> u64 {
    let per_instr = lanes as u64 * vec_width as u64;
    total_elems.div_ceil(per_instr.max(1))
}

/// Shared-memory bank-conflict multiplier for a warp access where lane `i`
/// accesses 4-byte word index `i * stride_words`. Nvidia shared memory has 32
/// banks of 4-byte words; an N-way conflict serializes into N passes.
pub fn bank_conflict_ways(stride_words: u32, lanes: u32) -> u32 {
    if lanes <= 1 {
        return 1;
    }
    if stride_words == 0 {
        // All lanes read the same word: hardware broadcasts in one pass.
        return 1;
    }
    let stride = stride_words % 32;
    if stride == 0 {
        // Same bank, different words: fully serialized.
        return lanes.min(32);
    }
    // Number of lanes mapping to the same bank = 32 / gcd-cycle length.
    let g = gcd(stride, 32);
    g.min(lanes)
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_aligned() {
        assert_eq!(sectors_contiguous(0, 128), 4);
        assert_eq!(sectors_contiguous(32, 32), 1);
        assert_eq!(sectors_contiguous(0, 0), 0);
    }

    #[test]
    fn contiguous_misaligned_costs_extra_sector() {
        // 128 bytes starting 4 bytes into a sector straddles 5 sectors.
        assert_eq!(sectors_contiguous(4, 128), 5);
        // This is the ROMA motivation: aligned start avoids the 5th sector.
        assert_eq!(sectors_contiguous(0, 128), 4);
    }

    #[test]
    fn strided_large_stride_one_sector_per_lane() {
        // Column-major walk with 8 KiB stride: 32 separate sectors.
        assert_eq!(sectors_strided(0, 32, 8192, 4), 32);
    }

    #[test]
    fn strided_unit_stride_is_contiguous() {
        assert_eq!(sectors_strided(0, 32, 4, 4), 4);
    }

    #[test]
    fn gather_merges_duplicate_sectors() {
        let addrs = [0u64, 4, 8, 12, 64, 68];
        assert_eq!(sectors_gather(&addrs, 4), 2);
    }

    #[test]
    fn gather_scattered() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 4096).collect();
        assert_eq!(sectors_gather(&addrs, 4), 32);
    }

    #[test]
    fn vector_instrs() {
        // 128 floats over 32 lanes: 4 scalar instructions, 1 vec4 instruction.
        assert_eq!(vector_instr_count(128, 32, 1), 4);
        assert_eq!(vector_instr_count(128, 32, 4), 1);
        // 8 lanes (subwarp), vec4: 128/(8*4) = 4 instructions.
        assert_eq!(vector_instr_count(128, 8, 4), 4);
    }

    #[test]
    fn bank_conflicts() {
        assert_eq!(bank_conflict_ways(1, 32), 1, "unit stride is conflict-free");
        assert_eq!(bank_conflict_ways(2, 32), 2, "stride 2 is a 2-way conflict");
        assert_eq!(bank_conflict_ways(32, 32), 32, "stride 32 serializes fully");
        assert_eq!(
            bank_conflict_ways(0, 32),
            1,
            "same-word access is a broadcast"
        );
        assert_eq!(
            bank_conflict_ways(5, 32),
            1,
            "odd strides are conflict-free"
        );
    }
}
