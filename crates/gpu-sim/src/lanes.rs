//! Lane-vectorized accumulation helpers for functional kernel bodies.
//!
//! The paper's kernels win on hardware by keeping every lane of a vector
//! unit busy on independent output columns (Section V-A: subwarp tiling,
//! vector memory ops). The simulator's functional bodies reproduce the same
//! structure on the CPU: the helpers here process independent output columns
//! in fixed-width chunks of [`LANES`] with `f32::mul_add`, which the
//! compiler lowers to packed FMA (`.cargo/config.toml` targets the host CPU
//! so `mul_add` is a hardware instruction, not a libm call).
//!
//! ## The accumulation-order invariant
//!
//! Every helper performs, for each output element `i`, exactly the sequence
//! `acc[i] = a.mul_add(b[i], acc[i])` in the same per-element order as a
//! plain scalar loop. Vectorization only regroups *independent* elements
//! across lanes; it never reassociates the per-element reduction, and FMA
//! rounds once regardless of vector width. The scalar fallback (selected by
//! [`set_vectorized`] or the `GPU_SIM_SCALAR` environment variable) is
//! therefore **bit-identical** to the vectorized path — the
//! `lanes_equivalence` integration suite asserts exact output equality for
//! every kernel on both paths.

use std::sync::atomic::{AtomicU8, Ordering};

/// Lanes per chunk. Eight f32s = one AVX2 register; the compiler unrolls
/// the fixed-size inner loop into packed FMAs.
pub const LANES: usize = 8;

const UNSET: u8 = 0;
const SCALAR: u8 = 1;
const VECTOR: u8 = 2;

/// Process-wide path selector. `UNSET` resolves from the environment on
/// first use; tests flip it explicitly via [`set_vectorized`].
static MODE: AtomicU8 = AtomicU8::new(UNSET);

/// Whether the vectorized path is active. Defaults to vectorized unless the
/// `GPU_SIM_SCALAR` environment variable is set to something other than `0`.
#[inline]
pub fn vectorized() -> bool {
    match MODE.load(Ordering::Relaxed) {
        SCALAR => false,
        VECTOR => true,
        _ => {
            let vec = !matches!(
                std::env::var("GPU_SIM_SCALAR").as_deref(),
                Ok(v) if !v.is_empty() && v != "0"
            );
            MODE.store(if vec { VECTOR } else { SCALAR }, Ordering::Relaxed);
            vec
        }
    }
}

/// Force the scalar or vectorized path (overrides the environment). Used by
/// the equivalence suite; affects the whole process.
pub fn set_vectorized(on: bool) {
    MODE.store(if on { VECTOR } else { SCALAR }, Ordering::Relaxed);
}

/// `acc[i] = a.mul_add(to(b[i]), acc[i])` for every `i` — one sparse
/// nonzero scaled into a row tile of independent output columns. `to`
/// converts the stored element type (e.g. half) to f32; for `f32` inputs it
/// is the identity and the loop compiles to packed FMA.
///
/// Panics if the slices differ in length (a tile-shape bug, not a runtime
/// condition).
#[inline]
pub fn fma_axpy<T: Copy>(acc: &mut [f32], a: f32, b: &[T], to: impl Fn(T) -> f32) {
    assert_eq!(acc.len(), b.len(), "tile widths must agree");
    if vectorized() {
        let head = acc.len() - acc.len() % LANES;
        let (acc_head, acc_tail) = acc.split_at_mut(head);
        let (b_head, b_tail) = b.split_at(head);
        for (ac, bc) in acc_head
            .chunks_exact_mut(LANES)
            .zip(b_head.chunks_exact(LANES))
        {
            for i in 0..LANES {
                ac[i] = a.mul_add(to(bc[i]), ac[i]);
            }
        }
        for (av, &bv) in acc_tail.iter_mut().zip(b_tail) {
            *av = a.mul_add(to(bv), *av);
        }
    } else {
        for (av, &bv) in acc.iter_mut().zip(b) {
            *av = a.mul_add(to(bv), *av);
        }
    }
}

/// Full tile reduction with register-resident accumulators:
/// `acc[i] = term_k.0.mul_add(to(term_k.1[i]), acc[i])` for every term, in
/// term order. Equivalent to calling [`fma_axpy`] once per term, but the
/// vectorized path walks the terms once per [`LANES`]-wide chunk so the
/// chunk's accumulator lives in a vector register across the whole
/// reduction instead of round-tripping the stack on every term — the same
/// trick the paper's kernels use to keep partial sums in registers across
/// the K loop.
///
/// Each element still accumulates its terms in exactly the given order, so
/// the result is bit-identical to the scalar path (and to a per-term
/// [`fma_axpy`] loop). Every term's slice must be at least `acc.len()`
/// long; extra elements are ignored.
#[inline]
pub fn fma_accumulate<'a, T: Copy + 'a>(
    acc: &mut [f32],
    terms: impl Iterator<Item = (f32, &'a [T])> + Clone,
    to: impl Fn(T) -> f32 + Copy,
) {
    let n = acc.len();
    if vectorized() {
        let head = n - n % LANES;
        let mut c0 = 0;
        while c0 < head {
            let mut v = [0.0f32; LANES];
            v.copy_from_slice(&acc[c0..c0 + LANES]);
            for (a, row) in terms.clone() {
                let chunk = &row[c0..c0 + LANES];
                for (vi, &bv) in v.iter_mut().zip(chunk) {
                    *vi = a.mul_add(to(bv), *vi);
                }
            }
            acc[c0..c0 + LANES].copy_from_slice(&v);
            c0 += LANES;
        }
        if head < n {
            for (a, row) in terms {
                for (av, &bv) in acc[head..].iter_mut().zip(&row[head..n]) {
                    *av = a.mul_add(to(bv), *av);
                }
            }
        }
    } else {
        for (a, row) in terms {
            for (av, &bv) in acc.iter_mut().zip(&row[..n]) {
                *av = a.mul_add(to(bv), *av);
            }
        }
    }
}

/// Two-row variant of [`fma_accumulate`]: both accumulator rows reduce the
/// same sequence of operand rows, with per-term coefficients `a0` and `a1`.
/// Each operand chunk is loaded once and feeds two register-resident
/// accumulators (double the arithmetic intensity of two separate passes).
/// Per-element accumulation order in each row is unchanged, so results are
/// bit-identical to two [`fma_accumulate`] calls.
#[inline]
pub fn fma_accumulate_pair<'a, T: Copy + 'a>(
    acc0: &mut [f32],
    acc1: &mut [f32],
    terms: impl Iterator<Item = (f32, f32, &'a [T])> + Clone,
    to: impl Fn(T) -> f32 + Copy,
) {
    let n = acc0.len();
    assert_eq!(acc1.len(), n, "accumulator rows must agree");
    if vectorized() {
        let head = n - n % LANES;
        let mut c0 = 0;
        while c0 < head {
            let mut v0 = [0.0f32; LANES];
            let mut v1 = [0.0f32; LANES];
            v0.copy_from_slice(&acc0[c0..c0 + LANES]);
            v1.copy_from_slice(&acc1[c0..c0 + LANES]);
            for (a0, a1, row) in terms.clone() {
                let chunk = &row[c0..c0 + LANES];
                for i in 0..LANES {
                    let bv = to(chunk[i]);
                    v0[i] = a0.mul_add(bv, v0[i]);
                    v1[i] = a1.mul_add(bv, v1[i]);
                }
            }
            acc0[c0..c0 + LANES].copy_from_slice(&v0);
            acc1[c0..c0 + LANES].copy_from_slice(&v1);
            c0 += LANES;
        }
        if head < n {
            for (a0, a1, row) in terms {
                for (i, &bv) in row[head..n].iter().enumerate() {
                    let bv = to(bv);
                    acc0[head + i] = a0.mul_add(bv, acc0[head + i]);
                    acc1[head + i] = a1.mul_add(bv, acc1[head + i]);
                }
            }
        }
    } else {
        for (a0, a1, row) in terms {
            for (i, &bv) in row[..n].iter().enumerate() {
                let bv = to(bv);
                acc0[i] = a0.mul_add(bv, acc0[i]);
                acc1[i] = a1.mul_add(bv, acc1[i]);
            }
        }
    }
}

/// Strided variant: `acc[i] = a.mul_add(to(b[i * stride]), acc[i])` — for
/// operands walked down a column of a row-major matrix. The gather defeats
/// packed loads, but the FMA and the per-element order are identical to
/// [`fma_axpy`].
#[inline]
pub fn fma_axpy_strided<T: Copy>(
    acc: &mut [f32],
    a: f32,
    b: &[T],
    stride: usize,
    to: impl Fn(T) -> f32,
) {
    for (i, av) in acc.iter_mut().enumerate() {
        *av = a.mul_add(to(b[i * stride]), *av);
    }
}

/// Sequential dot product with per-step FMA: `sum_i to(a[i]) * to(b[i])`,
/// accumulated left to right exactly like the scalar reference. Horizontal
/// reductions are *not* lane-split (that would reassociate the sum and
/// break bit-identity); the win is the fused multiply-add per step.
#[inline]
pub fn fma_dot<T: Copy>(a: &[T], b: &[T], to: impl Fn(T) -> f32) -> f32 {
    let mut acc = 0.0f32;
    for (&av, &bv) in a.iter().zip(b) {
        acc = to(av).mul_add(to(bv), acc);
    }
    acc
}

/// Four independent dot products against a shared left operand, with the
/// chains interleaved step-by-step. Each chain accumulates left to right
/// exactly like [`fma_dot`] — interleaving only overlaps the *independent*
/// chains' FMA latencies (instruction-level parallelism), it never
/// reassociates a sum, so every result is bit-identical to four separate
/// [`fma_dot`] calls.
#[inline]
pub fn fma_dot4<T: Copy>(a: &[T], b: [&[T]; 4], to: impl Fn(T) -> f32 + Copy) -> [f32; 4] {
    let mut acc = [0.0f32; 4];
    for (i, &av) in a.iter().enumerate() {
        let av = to(av);
        acc[0] = av.mul_add(to(b[0][i]), acc[0]);
        acc[1] = av.mul_add(to(b[1][i]), acc[1]);
        acc[2] = av.mul_add(to(b[2][i]), acc[2]);
        acc[3] = av.mul_add(to(b[3][i]), acc[3]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_paths_are_bit_identical() {
        let b: Vec<f32> = (0..37).map(|i| (i as f32) * 0.37 - 3.0).collect();
        let mut vec_acc = vec![0.1f32; 37];
        let mut sc_acc = vec![0.1f32; 37];
        set_vectorized(true);
        fma_axpy(&mut vec_acc, 1.7, &b, |v| v);
        fma_axpy(&mut vec_acc, -0.3, &b, |v| v);
        set_vectorized(false);
        fma_axpy(&mut sc_acc, 1.7, &b, |v| v);
        fma_axpy(&mut sc_acc, -0.3, &b, |v| v);
        set_vectorized(true);
        for (v, s) in vec_acc.iter().zip(&sc_acc) {
            assert_eq!(v.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn axpy_matches_explicit_mul_add() {
        let b: Vec<f32> = (0..19).map(|i| i as f32).collect();
        let mut acc = vec![0.0f32; 19];
        set_vectorized(true);
        fma_axpy(&mut acc, 2.0, &b, |v| v);
        for (i, v) in acc.iter().enumerate() {
            assert_eq!(*v, 2.0f32.mul_add(i as f32, 0.0));
        }
    }

    #[test]
    fn accumulate_matches_per_term_axpy_bitwise() {
        let rows: Vec<Vec<f32>> = (0..5)
            .map(|t| (0..37).map(|i| (t * 37 + i) as f32 * 0.13 - 2.0).collect())
            .collect();
        let coef = [1.5f32, -0.25, 3.0, 0.0, -1.125];
        let mut want = vec![0.5f32; 37];
        set_vectorized(true);
        for (c, row) in coef.iter().zip(&rows) {
            fma_axpy(&mut want, *c, row, |v| v);
        }
        for on in [true, false] {
            set_vectorized(on);
            let mut got = vec![0.5f32; 37];
            fma_accumulate(
                &mut got,
                coef.iter().zip(&rows).map(|(&c, r)| (c, r.as_slice())),
                |v| v,
            );
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits(), "path vectorized={on}");
            }
        }
        set_vectorized(true);
    }

    #[test]
    fn accumulate_ignores_slack_past_tile_width() {
        let row = [1.0f32; 16];
        let mut acc = [0.0f32; 9];
        set_vectorized(true);
        fma_accumulate(&mut acc, std::iter::once((2.0f32, &row[..])), |v| v);
        assert_eq!(acc, [2.0f32; 9]);
    }

    #[test]
    fn dot_accumulates_left_to_right() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [4.0f32, 5.0, 6.0];
        let mut want = 0.0f32;
        for i in 0..3 {
            want = a[i].mul_add(b[i], want);
        }
        assert_eq!(fma_dot(&a, &b, |v| v), want);
    }

    #[test]
    fn strided_walks_columns() {
        // b is 3x4 row-major; stride 4 walks column 1.
        let b: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let mut acc = vec![0.0f32; 3];
        fma_axpy_strided(&mut acc, 1.0, &b[1..], 4, |v| v);
        assert_eq!(acc, vec![1.0, 5.0, 9.0]);
    }
}
