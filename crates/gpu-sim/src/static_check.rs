//! Static launch auditor: prove (or refute) sanitizer properties from the
//! launch descriptor alone, before a single block executes.
//!
//! The dynamic sanitizer ([`crate::sanitizer`]) certifies a launch by
//! executing every block with instrumented recording — sound, but linear in
//! the grid and by far the slowest CI gate. The paper's kernels, however,
//! are safe *by construction*: 1-D tiling makes output ownership disjoint,
//! ROMA makes vector loads aligned, and the tile arithmetic bounds every
//! traced address (Gale et al., SC 2020, §V). Those properties are functions
//! of the launch descriptor — grid/block dims, declared footprints, tile
//! shapes, address classes mod 32 — so they can be decided without running
//! the kernel.
//!
//! [`audit`] evaluates five check classes ([`CheckClass`]) and returns a
//! three-valued [`Verdict`] for each:
//!
//! * `Proven` — holds for every block; [`Gpu::sanitize`] skips the matching
//!   dynamic check.
//! * `Refuted` — the descriptor contains a counterexample; dispatch rejects
//!   the launch before the simulator ever runs it.
//! * `NeedsDynamic` — depends on runtime data (gathered indices, barrier
//!   interleavings); the PR-2 dynamic sanitizer remains the authority.
//!
//! The kernel's side of the bargain is [`StaticFacts`], a declarative
//! summary returned by [`Kernel::static_facts`]: sound access-extent bounds
//! per buffer, worst-case vector-address residues (the same mod-32
//! address-class machinery `block_signature` hashes), the shared-memory
//! staging discipline, and a per-epoch staging bound. The default is fully
//! conservative (`NeedsDynamic` everywhere a declaration is required), so a
//! kernel that declares nothing loses no checking — it only keeps paying
//! the dynamic price. Soundness of a declaration is the implementor's
//! burden, exactly like [`Kernel::block_signature`]; the cross-check is that
//! `static_audit` and `sanitize_all` run both analyses over every
//! registered kernel and fail CI on any disagreement.
//!
//! The cross-block racecheck has no static counterpart here (disjointness
//! of output tiles is data-independent for these kernels but lives behind
//! `SyncUnsafeSlice`, whose shadow map is cheap to keep always-on), so a
//! sanitized launch always arms it.
//!
//! [`Gpu::sanitize`]: crate::launch::Gpu::sanitize
//! [`Kernel::static_facts`]: crate::kernel::Kernel::static_facts
//! [`Kernel::block_signature`]: crate::kernel::Kernel::block_signature

use crate::device::DeviceConfig;
use crate::kernel::Kernel;
use crate::occupancy;
use crate::sanitizer::{CheckClass, ChecksMask, Verdict};
use serde::{Deserialize, Serialize};

/// CUDA architectural limit on threads per block (not a [`DeviceConfig`]
/// field because it has been 1024 on every generation the simulator models).
pub const MAX_THREADS_PER_BLOCK: u32 = 1024;
/// CUDA architectural limits on block dims (x, y, z).
pub const MAX_BLOCK_DIM: (u32, u32, u32) = (1024, 1024, 64);
/// CUDA architectural limits on grid dims (x, y, z).
pub const MAX_GRID_DIM: (u32, u32, u32) = (0x7FFF_FFFF, 65_535, 65_535);

/// A sound bound on the byte extent a launch accesses within one buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessBound {
    /// No access reaches byte `max_end` or beyond: every traced access
    /// `[addr, addr + bytes)` satisfies `addr + bytes <= max_end`. Derived
    /// from the kernel's own tile arithmetic, independently of the
    /// footprint it declares — the audit cross-checks the two.
    Extent(u64),
    /// Addresses depend on runtime data (gather indices, permutations) with
    /// no cheap sound bound.
    DataDependent,
}

/// One buffer's declared access bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferBound {
    /// Buffer slot ([`crate::cost::BufferId`] index).
    pub slot: u8,
    pub bound: AccessBound,
}

/// The worst-case address class of one vector-access site: the maximum of
/// `addr % (vec_width * elem_bytes)` over every address the site can issue.
/// Zero means every access is naturally aligned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorClass {
    pub slot: u8,
    pub vec_width: u32,
    pub elem_bytes: u32,
    /// `max(addr % (vec_width * elem_bytes))` over the site's addresses.
    pub worst_residue: u64,
}

/// What the kernel can say about its vector-access alignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlignmentFacts {
    /// The kernel issues no vector accesses (`vec_width > 1`): nothing to
    /// misalign.
    ScalarOnly,
    /// Every vector-access site with its worst-case residue class, computed
    /// with the same mod-`align` arithmetic `block_signature` hashes.
    Residues(Vec<VectorClass>),
    /// Vector addresses depend on runtime data; only the dynamic aligncheck
    /// can rule.
    DataDependent,
}

/// What the kernel can say about its shared-memory barrier discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BarrierFacts {
    /// All staging is warp-synchronous ([`crate::SmemScope::Warp`], or no
    /// shared staging at all): producer and consumer are the same warp, no
    /// barrier needed, hazard impossible.
    WarpSynchronous,
    /// Block-scope staging exists and the kernel claims every store phase is
    /// separated from its load phase by `bar_sync`. The *interleaving* is
    /// not decidable from the descriptor, so this falls back to the dynamic
    /// barrier-epoch analysis.
    BarrierSeparated,
    /// Block-scope staging with no barrier at all — a certain hazard in any
    /// multi-warp block.
    NoBarrier,
    /// Discipline unknown (the conservative default).
    Unknown,
}

/// A sound per-barrier-epoch bound on block-scope staged bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageBound {
    /// No epoch stages more than this many block-scope bytes.
    Bytes(u64),
    /// No cheap bound (the conservative default).
    Unknown,
}

/// Declarative facts a kernel asserts about its own launch, consumed by
/// [`audit`]. Every field defaults to "unknown", which audits to
/// `NeedsDynamic` — conservative, never wrong.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticFacts {
    /// Per-buffer access-extent bounds; `None` means undeclared.
    pub bounds: Option<Vec<BufferBound>>,
    pub alignment: AlignmentFacts,
    pub barrier: BarrierFacts,
    /// Per-epoch block-scope staging bound.
    pub stage: StageBound,
}

impl StaticFacts {
    /// The conservative default: everything audits to `NeedsDynamic`.
    pub fn conservative() -> Self {
        Self {
            bounds: None,
            alignment: AlignmentFacts::DataDependent,
            barrier: BarrierFacts::Unknown,
            stage: StageBound::Unknown,
        }
    }
}

impl Default for StaticFacts {
    fn default() -> Self {
        Self::conservative()
    }
}

/// One check class's audited outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticFinding {
    pub class: CheckClass,
    pub verdict: Verdict,
    /// What was proven / refuted / left to the dynamic sanitizer.
    pub detail: String,
}

/// The full static audit of one launch: one finding per [`CheckClass`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticAudit {
    pub kernel: String,
    pub findings: Vec<StaticFinding>,
}

impl StaticAudit {
    pub fn verdict(&self, class: CheckClass) -> Verdict {
        self.findings
            .iter()
            .find(|f| f.class == class)
            .map_or(Verdict::NeedsDynamic, |f| f.verdict)
    }

    /// The first refuted finding, if any.
    pub fn refutation(&self) -> Option<&StaticFinding> {
        self.findings.iter().find(|f| f.verdict == Verdict::Refuted)
    }

    pub fn proven(&self) -> u64 {
        self.count(Verdict::Proven)
    }

    pub fn count(&self, v: Verdict) -> u64 {
        self.findings.iter().filter(|f| f.verdict == v).count() as u64
    }

    /// The dynamic checks a sanitized launch still needs: proven classes
    /// are disarmed, refuted and undecided classes stay on.
    pub fn dynamic_mask(&self) -> ChecksMask {
        ChecksMask {
            bounds: self.verdict(CheckClass::Bounds) != Verdict::Proven,
            alignment: self.verdict(CheckClass::Alignment) != Verdict::Proven,
            shared_capacity: self.verdict(CheckClass::SharedCapacity) != Verdict::Proven,
            barrier: self.verdict(CheckClass::BarrierStructure) != Verdict::Proven,
        }
    }
}

impl std::fmt::Display for StaticAudit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:", self.kernel)?;
        for finding in &self.findings {
            write!(
                f,
                "\n  {:17} {:13} {}",
                finding.class.name(),
                finding.verdict.name(),
                finding.detail
            )?;
        }
        Ok(())
    }
}

/// Audit one kernel's launch descriptor against a device model. Pure
/// metadata analysis: no block executes, no output buffer is touched.
pub fn audit(dev: &DeviceConfig, kernel: &dyn Kernel) -> StaticAudit {
    let facts = kernel.static_facts();
    let buffers = kernel.buffers();
    let req = kernel.block_requirements();
    let multi_warp = req.threads > dev.warp_size;
    let findings = vec![
        check_bounds(&facts, &buffers),
        check_alignment(&facts),
        check_shared_capacity(dev, &facts, req.smem_bytes, multi_warp),
        check_grid_occupancy(dev, kernel),
        check_barrier(&facts, multi_warp),
    ];
    StaticAudit {
        kernel: kernel.name(),
        findings,
    }
}

fn finding(class: CheckClass, verdict: Verdict, detail: String) -> StaticFinding {
    StaticFinding {
        class,
        verdict,
        detail,
    }
}

/// Bounds: every declared buffer needs a sound extent bound at or under its
/// footprint. The extent comes from the kernel's tile arithmetic, the
/// footprint from its operand shapes — agreement of two independently
/// derived numbers is the proof.
fn check_bounds(facts: &StaticFacts, buffers: &[crate::cache::BufferSpec]) -> StaticFinding {
    let class = CheckClass::Bounds;
    let Some(declared) = facts.bounds.as_ref() else {
        return finding(
            class,
            Verdict::NeedsDynamic,
            "no declared access bounds".into(),
        );
    };
    let mut proven = 0usize;
    let mut dynamic: Option<String> = None;
    for spec in buffers {
        let bound = declared.iter().find(|b| b.slot == spec.id.0);
        match bound.map(|b| b.bound) {
            Some(AccessBound::Extent(end)) => {
                if end > spec.footprint_bytes {
                    return finding(
                        class,
                        Verdict::Refuted,
                        format!(
                            "`{}`: access extent {end} B exceeds declared footprint {} B",
                            spec.name, spec.footprint_bytes
                        ),
                    );
                }
                proven += 1;
            }
            Some(AccessBound::DataDependent) => {
                dynamic.get_or_insert_with(|| {
                    format!("`{}` gathers data-dependent addresses", spec.name)
                });
            }
            None => {
                dynamic.get_or_insert_with(|| format!("`{}` has no declared bound", spec.name));
            }
        }
    }
    match dynamic {
        Some(why) => finding(class, Verdict::NeedsDynamic, why),
        None => finding(
            class,
            Verdict::Proven,
            format!("{proven} buffer extents within declared footprints"),
        ),
    }
}

fn check_alignment(facts: &StaticFacts) -> StaticFinding {
    let class = CheckClass::Alignment;
    match &facts.alignment {
        AlignmentFacts::ScalarOnly => {
            finding(class, Verdict::Proven, "no vector accesses issued".into())
        }
        AlignmentFacts::Residues(sites) => {
            for site in sites {
                let align = site.vec_width as u64 * site.elem_bytes as u64;
                if site.vec_width > 1 && site.worst_residue != 0 {
                    return finding(
                        class,
                        Verdict::Refuted,
                        format!(
                            "slot {} vec{} access class {} mod {align} is misaligned",
                            site.slot, site.vec_width, site.worst_residue
                        ),
                    );
                }
            }
            finding(
                class,
                Verdict::Proven,
                format!("{} vector-access sites in residue class 0", sites.len()),
            )
        }
        AlignmentFacts::DataDependent => finding(
            class,
            Verdict::NeedsDynamic,
            "vector addresses depend on runtime data".into(),
        ),
    }
}

fn check_shared_capacity(
    dev: &DeviceConfig,
    facts: &StaticFacts,
    smem_bytes: u32,
    multi_warp: bool,
) -> StaticFinding {
    let class = CheckClass::SharedCapacity;
    if smem_bytes > dev.smem_per_block_max {
        return finding(
            class,
            Verdict::Refuted,
            format!(
                "{smem_bytes} B per block exceeds device cap {} B",
                dev.smem_per_block_max
            ),
        );
    }
    if !multi_warp {
        return finding(
            class,
            Verdict::Proven,
            "single-warp block: staging is warp-synchronous".into(),
        );
    }
    match facts.stage {
        StageBound::Bytes(staged) => {
            if staged == 0 {
                finding(class, Verdict::Proven, "no block-scope staging".into())
            } else if smem_bytes == 0 {
                finding(
                    class,
                    Verdict::Refuted,
                    format!("{staged} B staged per epoch with no declared shared memory"),
                )
            } else if staged > smem_bytes as u64 {
                finding(
                    class,
                    Verdict::Refuted,
                    format!("{staged} B staged per epoch exceeds declared {smem_bytes} B"),
                )
            } else {
                finding(
                    class,
                    Verdict::Proven,
                    format!("<= {staged} B staged per epoch within declared {smem_bytes} B"),
                )
            }
        }
        StageBound::Unknown => finding(
            class,
            Verdict::NeedsDynamic,
            "per-epoch staging bound undeclared".into(),
        ),
    }
}

/// Grid/occupancy needs no kernel declaration: it is fully decided by the
/// launch descriptor and the device model.
fn check_grid_occupancy(dev: &DeviceConfig, kernel: &dyn Kernel) -> StaticFinding {
    let class = CheckClass::GridOccupancy;
    let grid = kernel.grid();
    let block = kernel.block_dim();
    let req = kernel.block_requirements();
    if req.threads == 0 {
        return finding(class, Verdict::Refuted, "zero threads per block".into());
    }
    if req.threads > MAX_THREADS_PER_BLOCK {
        return finding(
            class,
            Verdict::Refuted,
            format!(
                "{} threads per block exceeds the {MAX_THREADS_PER_BLOCK}-thread limit",
                req.threads
            ),
        );
    }
    if block.x > MAX_BLOCK_DIM.0 || block.y > MAX_BLOCK_DIM.1 || block.z > MAX_BLOCK_DIM.2 {
        return finding(
            class,
            Verdict::Refuted,
            format!(
                "block dim ({}, {}, {}) exceeds hardware limits",
                block.x, block.y, block.z
            ),
        );
    }
    if grid.x > MAX_GRID_DIM.0 || grid.y > MAX_GRID_DIM.1 || grid.z > MAX_GRID_DIM.2 {
        return finding(
            class,
            Verdict::Refuted,
            format!(
                "grid dim ({}, {}, {}) exceeds hardware limits",
                grid.x, grid.y, grid.z
            ),
        );
    }
    let occ = occupancy::occupancy(dev, &req);
    if occ.blocks_per_sm == 0 {
        return finding(
            class,
            Verdict::Refuted,
            format!(
                "zero occupancy: no block fits on an SM (limited by {:?})",
                occ.limited_by
            ),
        );
    }
    finding(
        class,
        Verdict::Proven,
        format!(
            "{} blocks/SM ({} warps), dims within limits",
            occ.blocks_per_sm, occ.warps_per_sm
        ),
    )
}

fn check_barrier(facts: &StaticFacts, multi_warp: bool) -> StaticFinding {
    let class = CheckClass::BarrierStructure;
    if !multi_warp {
        return finding(
            class,
            Verdict::Proven,
            "single-warp block: no cross-warp hazards".into(),
        );
    }
    match facts.barrier {
        BarrierFacts::WarpSynchronous => finding(
            class,
            Verdict::Proven,
            "all staging is warp-synchronous".into(),
        ),
        BarrierFacts::BarrierSeparated => finding(
            class,
            Verdict::NeedsDynamic,
            "barrier-separated phases: interleaving checked dynamically".into(),
        ),
        BarrierFacts::NoBarrier => finding(
            class,
            Verdict::Refuted,
            "block-scope staging with no bar_sync in a multi-warp block".into(),
        ),
        BarrierFacts::Unknown => finding(
            class,
            Verdict::NeedsDynamic,
            "barrier discipline undeclared".into(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{AccessPattern, BufferSpec};
    use crate::cost::{BlockContext, BufferId};
    use crate::dim::Dim3;

    /// A configurable test kernel: each field seeds (or avoids) exactly one
    /// class of static violation.
    struct Probe {
        grid: Dim3,
        block: Dim3,
        smem: u32,
        footprint: u64,
        facts: StaticFacts,
    }

    impl Probe {
        fn clean() -> Self {
            Probe {
                grid: Dim3::x(4),
                block: Dim3::x(64),
                smem: 1024,
                footprint: 4096,
                facts: StaticFacts {
                    bounds: Some(vec![BufferBound {
                        slot: 0,
                        bound: AccessBound::Extent(4096),
                    }]),
                    alignment: AlignmentFacts::ScalarOnly,
                    barrier: BarrierFacts::WarpSynchronous,
                    stage: StageBound::Bytes(0),
                },
            }
        }
    }

    impl Kernel for Probe {
        fn name(&self) -> String {
            "probe".into()
        }
        fn grid(&self) -> Dim3 {
            self.grid
        }
        fn block_dim(&self) -> Dim3 {
            self.block
        }
        fn shared_mem_bytes(&self) -> u32 {
            self.smem
        }
        fn buffers(&self) -> Vec<BufferSpec> {
            vec![BufferSpec {
                id: BufferId(0),
                name: "buf",
                footprint_bytes: self.footprint,
                pattern: AccessPattern::Streaming,
            }]
        }
        fn execute_block(&self, _block: Dim3, _ctx: &mut BlockContext) {}
        fn static_facts(&self) -> StaticFacts {
            self.facts.clone()
        }
    }

    fn dev() -> DeviceConfig {
        DeviceConfig::v100()
    }

    #[test]
    fn clean_kernel_proves_all_five_classes() {
        let audit = audit(&dev(), &Probe::clean());
        assert_eq!(audit.proven(), 5, "{audit}");
        assert!(audit.refutation().is_none());
        let mask = audit.dynamic_mask();
        assert!(!mask.bounds && !mask.alignment && !mask.shared_capacity && !mask.barrier);
        assert_eq!(mask.skipped(), 4);
    }

    #[test]
    fn conservative_facts_need_dynamic_everywhere_but_grid() {
        let mut probe = Probe::clean();
        probe.facts = StaticFacts::conservative();
        let audit = audit(&dev(), &probe);
        assert_eq!(audit.verdict(CheckClass::GridOccupancy), Verdict::Proven);
        for class in [
            CheckClass::Bounds,
            CheckClass::Alignment,
            CheckClass::SharedCapacity,
            CheckClass::BarrierStructure,
        ] {
            assert_eq!(audit.verdict(class), Verdict::NeedsDynamic, "{class:?}");
        }
        assert_eq!(audit.dynamic_mask(), ChecksMask::ALL);
    }

    #[test]
    fn bounds_overrun_is_refuted() {
        let mut probe = Probe::clean();
        probe.facts.bounds = Some(vec![BufferBound {
            slot: 0,
            bound: AccessBound::Extent(probe.footprint + 4),
        }]);
        let audit = audit(&dev(), &probe);
        assert_eq!(audit.verdict(CheckClass::Bounds), Verdict::Refuted);
        // Refuted classes stay dynamically armed: defense in depth.
        assert!(audit.dynamic_mask().bounds);
    }

    #[test]
    fn misaligned_residue_class_is_refuted() {
        let mut probe = Probe::clean();
        probe.facts.alignment = AlignmentFacts::Residues(vec![VectorClass {
            slot: 0,
            vec_width: 4,
            elem_bytes: 4,
            worst_residue: 8,
        }]);
        let audit = audit(&dev(), &probe);
        assert_eq!(audit.verdict(CheckClass::Alignment), Verdict::Refuted);

        probe.facts.alignment = AlignmentFacts::Residues(vec![VectorClass {
            slot: 0,
            vec_width: 4,
            elem_bytes: 4,
            worst_residue: 0,
        }]);
        let audit = super::audit(&dev(), &probe);
        assert_eq!(audit.verdict(CheckClass::Alignment), Verdict::Proven);
    }

    #[test]
    fn stage_overflow_is_refuted() {
        let mut probe = Probe::clean();
        probe.facts.stage = StageBound::Bytes(probe.smem as u64 + 1);
        probe.facts.barrier = BarrierFacts::BarrierSeparated;
        let audit = audit(&dev(), &probe);
        assert_eq!(audit.verdict(CheckClass::SharedCapacity), Verdict::Refuted);
        assert_eq!(
            audit.verdict(CheckClass::BarrierStructure),
            Verdict::NeedsDynamic
        );
    }

    #[test]
    fn device_smem_cap_is_refuted_per_device() {
        let mut probe = Probe::clean();
        probe.smem = 60 * 1024; // within V100's 96 KiB, over GTX 1080's 48 KiB
        probe.facts.stage = StageBound::Bytes(0);
        assert_eq!(
            audit(&dev(), &probe).verdict(CheckClass::SharedCapacity),
            Verdict::Proven
        );
        assert_eq!(
            audit(&DeviceConfig::gtx1080(), &probe).verdict(CheckClass::SharedCapacity),
            Verdict::Refuted
        );
    }

    #[test]
    fn grid_limits_and_occupancy_are_refuted() {
        let mut probe = Probe::clean();
        probe.block = Dim3::xy(64, 32); // 2048 threads > 1024
        assert_eq!(
            audit(&dev(), &probe).verdict(CheckClass::GridOccupancy),
            Verdict::Refuted
        );

        let mut probe = Probe::clean();
        probe.grid = Dim3::xy(8, 70_000); // grid.y over the 65535 limit
        assert_eq!(
            audit(&dev(), &probe).verdict(CheckClass::GridOccupancy),
            Verdict::Refuted
        );
    }

    #[test]
    fn missing_barrier_is_refuted_only_multi_warp() {
        let mut probe = Probe::clean();
        probe.facts.barrier = BarrierFacts::NoBarrier;
        assert_eq!(
            audit(&dev(), &probe).verdict(CheckClass::BarrierStructure),
            Verdict::Refuted
        );
        // A single-warp block cannot have cross-warp hazards at all.
        probe.block = Dim3::x(32);
        assert_eq!(
            audit(&dev(), &probe).verdict(CheckClass::BarrierStructure),
            Verdict::Proven
        );
    }

    #[test]
    fn display_names_every_class() {
        let text = format!("{}", audit(&dev(), &Probe::clean()));
        for class in CheckClass::ALL {
            assert!(text.contains(class.name()), "{text}");
        }
    }
}
