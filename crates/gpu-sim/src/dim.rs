//! CUDA-style 3-dimensional index types for grids and thread blocks.

use serde::{Deserialize, Serialize};

/// A 3-dimensional extent or index, mirroring CUDA's `dim3`.
///
/// Used both for grid dimensions (number of thread blocks along each axis)
/// and block dimensions (number of threads along each axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl Dim3 {
    /// A 1-dimensional extent `(x, 1, 1)`.
    pub const fn x(x: u32) -> Self {
        Self { x, y: 1, z: 1 }
    }

    /// A 2-dimensional extent `(x, y, 1)`.
    pub const fn xy(x: u32, y: u32) -> Self {
        Self { x, y, z: 1 }
    }

    /// A full 3-dimensional extent.
    pub const fn xyz(x: u32, y: u32, z: u32) -> Self {
        Self { x, y, z }
    }

    /// Total number of elements covered by this extent.
    pub const fn size(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// Linearize an index within this extent, x fastest (CUDA convention:
    /// `blockIdx.x + blockIdx.y * gridDim.x + blockIdx.z * gridDim.x * gridDim.y`).
    ///
    /// This matches the `block_idx` computation the paper uses when
    /// reverse-engineering the Volta thread block scheduler (Section V-C1).
    pub const fn linear(&self, idx: Dim3) -> u64 {
        idx.x as u64 + idx.y as u64 * self.x as u64 + idx.z as u64 * (self.x as u64 * self.y as u64)
    }

    /// Invert [`Self::linear`]: recover the 3-d index from a linear index.
    pub const fn delinearize(&self, linear: u64) -> Dim3 {
        let x = (linear % self.x as u64) as u32;
        let y = ((linear / self.x as u64) % self.y as u64) as u32;
        let z = (linear / (self.x as u64 * self.y as u64)) as u32;
        Dim3 { x, y, z }
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Dim3::x(x)
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Self {
        Dim3::xy(x, y)
    }
}

impl From<(u32, u32, u32)> for Dim3 {
    fn from((x, y, z): (u32, u32, u32)) -> Self {
        Dim3::xyz(x, y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_is_product() {
        assert_eq!(Dim3::xyz(2, 3, 4).size(), 24);
        assert_eq!(Dim3::x(7).size(), 7);
    }

    #[test]
    fn linear_roundtrip() {
        let g = Dim3::xyz(5, 4, 3);
        for z in 0..3 {
            for y in 0..4 {
                for x in 0..5 {
                    let idx = Dim3::xyz(x, y, z);
                    let lin = g.linear(idx);
                    assert_eq!(g.delinearize(lin), idx);
                }
            }
        }
    }

    #[test]
    fn linear_is_x_fastest() {
        let g = Dim3::xy(10, 10);
        assert_eq!(g.linear(Dim3::xyz(3, 0, 0)), 3);
        assert_eq!(g.linear(Dim3::xyz(0, 1, 0)), 10);
        assert_eq!(g.linear(Dim3::xyz(3, 2, 0)), 23);
    }
}
