//! Per-thread-block cost traces.
//!
//! Kernels execute their block body functionally (computing real outputs)
//! while recording, through [`BlockContext`], how many warp-level
//! instructions of each class they issued and how many global-memory sectors
//! each access touched. The launcher turns these traces into simulated time.

use crate::memory;
use crate::sanitizer::{BlockSan, SmemScope};
use serde::{Deserialize, Serialize};

/// Identifies one logical device buffer (e.g. the sparse matrix values, the
/// dense operand, the output). Buffer identities let the cache model reason
/// about cross-block reuse per buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufferId(pub u8);

/// Maximum number of distinct buffers a single kernel may declare.
pub const MAX_BUFFERS: usize = 8;

/// Global-memory traffic against a single buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Traffic {
    /// 32-byte sectors requested by loads (after intra-warp coalescing).
    pub ld_sectors: u64,
    /// 32-byte sectors written by stores.
    pub st_sectors: u64,
}

impl Traffic {
    pub fn ld_bytes(&self) -> u64 {
        self.ld_sectors * memory::SECTOR_BYTES
    }
    pub fn st_bytes(&self) -> u64 {
        self.st_sectors * memory::SECTOR_BYTES
    }
}

/// Warp-level instruction and memory-traffic counts for one thread block.
///
/// "Warp-level" means one FFMA entry covers up to 32 lanes; this matches how
/// the hardware issues and how the paper counts the 6-PTX-instruction cost of
/// ROMA or the instruction savings of vector loads.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BlockCost {
    /// FP32 FMA warp instructions issued.
    pub fma_instrs: u64,
    /// Other floating-point warp instructions (adds, mults, exp for softmax).
    pub fp_instrs: u64,
    /// Useful scalar FLOPs performed (2 per scalar FMA) — for throughput
    /// reporting, not timing.
    pub flops: u64,
    /// Global load warp instructions.
    pub ld_global_instrs: u64,
    /// Global store warp instructions.
    pub st_global_instrs: u64,
    /// Shared-memory load warp instructions.
    pub ld_shared_instrs: u64,
    /// Shared-memory store warp instructions.
    pub st_shared_instrs: u64,
    /// Bytes moved through shared memory (reads + writes).
    pub shared_bytes: u64,
    /// Extra shared-memory passes caused by bank conflicts, in units of
    /// warp-accesses (an N-way conflict adds N-1 here).
    pub bank_conflict_passes: u64,
    /// Warp shuffle instructions (used by the SDDMM reduction).
    pub shfl_instrs: u64,
    /// Integer / address / predicate / control warp instructions.
    pub misc_instrs: u64,
    /// `__syncthreads()` barriers executed.
    pub barriers: u64,
    /// Exposed-latency stall cycles the block cannot hide (e.g. warp
    /// divergence reducing memory-level parallelism). Added directly to the
    /// block's modeled time.
    pub stall_cycles: u64,
    /// Per-buffer global-memory traffic.
    pub gmem: [Traffic; MAX_BUFFERS],
}

impl BlockCost {
    /// Total warp instructions issued (all classes).
    pub fn total_instrs(&self) -> u64 {
        self.fma_instrs
            + self.fp_instrs
            + self.ld_global_instrs
            + self.st_global_instrs
            + self.ld_shared_instrs
            + self.st_shared_instrs
            + self.shfl_instrs
            + self.misc_instrs
    }

    /// Total global-memory sectors requested (loads + stores).
    pub fn total_sectors(&self) -> u64 {
        self.gmem.iter().map(|t| t.ld_sectors + t.st_sectors).sum()
    }

    /// Accumulate another block's cost into this one (for aggregation).
    pub fn merge(&mut self, other: &BlockCost) {
        self.fma_instrs += other.fma_instrs;
        self.fp_instrs += other.fp_instrs;
        self.flops += other.flops;
        self.ld_global_instrs += other.ld_global_instrs;
        self.st_global_instrs += other.st_global_instrs;
        self.ld_shared_instrs += other.ld_shared_instrs;
        self.st_shared_instrs += other.st_shared_instrs;
        self.shared_bytes += other.shared_bytes;
        self.bank_conflict_passes += other.bank_conflict_passes;
        self.shfl_instrs += other.shfl_instrs;
        self.misc_instrs += other.misc_instrs;
        self.barriers += other.barriers;
        self.stall_cycles += other.stall_cycles;
        for (a, b) in self.gmem.iter_mut().zip(other.gmem.iter()) {
            a.ld_sectors += b.ld_sectors;
            a.st_sectors += b.st_sectors;
        }
    }
}

/// The compact per-block record the launcher's timing model actually needs.
///
/// [`crate::timing::block_cycles`] reads only a handful of derived sums from
/// a [`BlockCost`] plus the per-buffer traffic; on large grids, keeping one
/// full `BlockCost` per block alive until the cache model has run wastes
/// memory and bandwidth. The streaming launch path folds each block's cost
/// into a running total immediately and retains only this struct per block.
///
/// Every field is an exact integer pre-sum of `BlockCost` counters, so
/// cycles computed from a `BlockCostLite` are bit-identical to cycles
/// computed from the originating `BlockCost` (the float math in
/// [`crate::timing`] consumes the same `u64` values either way). The
/// per-buffer [`Traffic`] array is kept whole because each slot is scaled by
/// its own cache miss rate — pre-summing across slots would reassociate
/// float additions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCostLite {
    /// `BlockCost::total_instrs()`.
    pub instrs: u64,
    /// `fma_instrs + fp_instrs`.
    pub fma_fp_instrs: u64,
    /// `ld_global_instrs + st_global_instrs`.
    pub global_instrs: u64,
    /// `ld_shared_instrs + st_shared_instrs`.
    pub smem_instrs: u64,
    pub shared_bytes: u64,
    pub bank_conflict_passes: u64,
    pub barriers: u64,
    pub stall_cycles: u64,
    /// Per-buffer global-memory traffic (kept per-slot for the cache model's
    /// per-buffer miss rates).
    pub gmem: [Traffic; MAX_BUFFERS],
}

impl From<&BlockCost> for BlockCostLite {
    fn from(c: &BlockCost) -> Self {
        Self {
            instrs: c.total_instrs(),
            fma_fp_instrs: c.fma_instrs + c.fp_instrs,
            global_instrs: c.ld_global_instrs + c.st_global_instrs,
            smem_instrs: c.ld_shared_instrs + c.st_shared_instrs,
            shared_bytes: c.shared_bytes,
            bank_conflict_passes: c.bank_conflict_passes,
            barriers: c.barriers,
            stall_cycles: c.stall_cycles,
            gmem: c.gmem,
        }
    }
}

/// Recording context handed to a kernel's `execute_block`.
///
/// Provides the memory/arithmetic primitives a CUDA kernel would use; each
/// call updates the block's [`BlockCost`]. The `functional` flag tells the
/// kernel whether it must also compute real output values (launch mode) or
/// may skip the arithmetic (profile mode, used for large parameter sweeps).
#[derive(Debug)]
pub struct BlockContext {
    pub cost: BlockCost,
    functional: bool,
    /// When false, the recording methods below are no-ops: the context is a
    /// replay of a launch whose statistics are already known (a
    /// [`LaunchCache`](crate::LaunchCache) hit), so sector/conflict math
    /// would be wasted. Kernels that poke `ctx.cost` fields directly still
    /// pay those (cheap) increments; the resulting cost is discarded.
    record: bool,
    /// Per-block sanitizer state; `None` outside sanitized launches, so the
    /// hot path pays one branch per recorded access.
    san: Option<Box<BlockSan>>,
}

impl BlockContext {
    pub fn new(functional: bool) -> Self {
        Self {
            cost: BlockCost::default(),
            functional,
            record: true,
            san: None,
        }
    }

    /// A functional context with cost recording disabled: used when a cached
    /// launch still has to produce its outputs but the statistics are served
    /// from the [`LaunchCache`](crate::LaunchCache).
    pub fn replay() -> Self {
        Self {
            cost: BlockCost::default(),
            functional: true,
            record: false,
            san: None,
        }
    }

    /// A context that additionally records sanitizer findings (see
    /// [`crate::sanitizer`]). Used by [`Gpu::sanitize`](crate::Gpu::sanitize).
    pub fn sanitized(functional: bool, san: BlockSan) -> Self {
        Self {
            cost: BlockCost::default(),
            functional,
            record: true,
            san: Some(Box::new(san)),
        }
    }

    /// Detach the block's sanitizer findings after `execute_block`.
    pub fn take_sanitizer(&mut self) -> Option<BlockSan> {
        self.san.take().map(|b| *b)
    }

    /// True when an attached sanitizer still has its boundscheck armed: the
    /// batched trace paths must then visit every row's address individually.
    /// When the static auditor proves bounds ([`crate::static_check`]), the
    /// sanitizer mask disarms the check and the batched paths regain their
    /// closed-form sector accounting.
    #[inline]
    fn san_checks_bounds(&self) -> bool {
        self.san.as_deref().is_some_and(|s| s.checks_bounds())
    }

    /// Whether the kernel must produce real numerical outputs.
    #[inline]
    pub fn functional(&self) -> bool {
        self.functional
    }

    /// Whether cost recording is active. Kernels use this to skip work that
    /// exists only to feed the cost model (gather-address staging, sector
    /// bookkeeping) when the context is a cache-hit replay.
    #[inline]
    pub fn recording(&self) -> bool {
        self.record
    }

    /// Check out a zeroed per-block `f32` staging buffer from the thread's
    /// scratch arena (see [`crate::arena`]). The buffer models CUDA shared
    /// memory: block-scoped, recycled across blocks, zero heap allocations
    /// once the worker's pool is warm. Must not outlive `execute_block`.
    #[inline]
    pub fn scratch_f32(&self, len: usize) -> crate::arena::ScratchF32 {
        crate::arena::ScratchF32::take(len)
    }

    /// Check out an empty per-block `u64` list (gather-address staging) with
    /// at least `cap` reserved elements; mirror of [`Self::scratch_f32`].
    #[inline]
    pub fn scratch_u64(&self, cap: usize) -> crate::arena::ScratchU64 {
        crate::arena::ScratchU64::take(cap)
    }

    /// A contiguous warp-wide global load: `lanes` active lanes, lane `i`
    /// reading `vec_width` consecutive elements of `elem_bytes` starting at
    /// `byte_addr + i * vec_width * elem_bytes`. One warp instruction.
    #[inline]
    pub fn ld_global(
        &mut self,
        buf: BufferId,
        byte_addr: u64,
        lanes: u32,
        vec_width: u32,
        elem_bytes: u32,
    ) {
        if !self.record {
            return;
        }
        let bytes = lanes as u64 * vec_width as u64 * elem_bytes as u64;
        let sectors = memory::sectors_contiguous(byte_addr, bytes);
        self.cost.ld_global_instrs += 1;
        self.cost.gmem[buf.0 as usize].ld_sectors += sectors;
        if let Some(san) = self.san.as_deref_mut() {
            san.check_global(buf.0 as usize, byte_addr, bytes);
            san.check_align(buf.0 as usize, byte_addr, vec_width, elem_bytes);
        }
    }

    /// A contiguous warp-wide global store; mirror of [`Self::ld_global`].
    #[inline]
    pub fn st_global(
        &mut self,
        buf: BufferId,
        byte_addr: u64,
        lanes: u32,
        vec_width: u32,
        elem_bytes: u32,
    ) {
        if !self.record {
            return;
        }
        let bytes = lanes as u64 * vec_width as u64 * elem_bytes as u64;
        let sectors = memory::sectors_contiguous(byte_addr, bytes);
        self.cost.st_global_instrs += 1;
        self.cost.gmem[buf.0 as usize].st_sectors += sectors;
        if let Some(san) = self.san.as_deref_mut() {
            san.check_global(buf.0 as usize, byte_addr, bytes);
            san.check_align(buf.0 as usize, byte_addr, vec_width, elem_bytes);
        }
    }

    /// A strided warp load (e.g. walking a column of a row-major matrix).
    #[inline]
    pub fn ld_global_strided(
        &mut self,
        buf: BufferId,
        base: u64,
        lanes: u32,
        stride_bytes: u64,
        elem_bytes: u32,
    ) {
        if !self.record {
            return;
        }
        let sectors = memory::sectors_strided(base, lanes, stride_bytes, elem_bytes as u64);
        self.cost.ld_global_instrs += 1;
        self.cost.gmem[buf.0 as usize].ld_sectors += sectors;
        if let Some(san) = self.san.as_deref_mut() {
            if lanes > 0 {
                let span = (lanes as u64 - 1) * stride_bytes + elem_bytes as u64;
                san.check_global(buf.0 as usize, base, span);
            }
            if stride_bytes >= memory::SECTOR_BYTES {
                san.note_uncoalesced(buf.0 as usize, lanes, sectors);
            }
        }
    }

    /// A strided warp store.
    #[inline]
    pub fn st_global_strided(
        &mut self,
        buf: BufferId,
        base: u64,
        lanes: u32,
        stride_bytes: u64,
        elem_bytes: u32,
    ) {
        if !self.record {
            return;
        }
        let sectors = memory::sectors_strided(base, lanes, stride_bytes, elem_bytes as u64);
        self.cost.st_global_instrs += 1;
        self.cost.gmem[buf.0 as usize].st_sectors += sectors;
        if let Some(san) = self.san.as_deref_mut() {
            if lanes > 0 {
                let span = (lanes as u64 - 1) * stride_bytes + elem_bytes as u64;
                san.check_global(buf.0 as usize, base, span);
            }
        }
    }

    /// A gather load with arbitrary per-lane byte addresses.
    #[inline]
    pub fn ld_global_gather(&mut self, buf: BufferId, addrs: &[u64], elem_bytes: u32) {
        if !self.record {
            return;
        }
        let sectors = memory::sectors_gather(addrs, elem_bytes as u64);
        self.cost.ld_global_instrs += 1;
        self.cost.gmem[buf.0 as usize].ld_sectors += sectors;
        if let Some(san) = self.san.as_deref_mut() {
            for &addr in addrs {
                san.check_global(buf.0 as usize, addr, elem_bytes as u64);
            }
            san.note_uncoalesced(buf.0 as usize, addrs.len() as u32, sectors);
        }
    }

    /// A shared-memory load: one warp instruction moving
    /// `lanes * vec_width * elem_bytes` bytes, with an N-way bank conflict
    /// adding N-1 extra passes.
    #[inline]
    pub fn ld_shared(&mut self, lanes: u32, vec_width: u32, elem_bytes: u32, conflict_ways: u32) {
        if !self.record {
            return;
        }
        self.cost.ld_shared_instrs += 1;
        self.cost.shared_bytes += lanes as u64 * vec_width as u64 * elem_bytes as u64;
        self.cost.bank_conflict_passes += conflict_ways.saturating_sub(1) as u64;
        if let Some(san) = self.san.as_deref_mut() {
            san.note_smem_load(SmemScope::Block);
            san.note_bank_conflict(conflict_ways);
        }
    }

    /// A shared-memory store; mirror of [`Self::ld_shared`].
    #[inline]
    pub fn st_shared(&mut self, lanes: u32, vec_width: u32, elem_bytes: u32, conflict_ways: u32) {
        if !self.record {
            return;
        }
        let bytes = lanes as u64 * vec_width as u64 * elem_bytes as u64;
        self.cost.st_shared_instrs += 1;
        self.cost.shared_bytes += bytes;
        self.cost.bank_conflict_passes += conflict_ways.saturating_sub(1) as u64;
        if let Some(san) = self.san.as_deref_mut() {
            san.note_smem_store(bytes, SmemScope::Block);
            san.note_bank_conflict(conflict_ways);
        }
    }

    /// Aggregate shared-memory staging: `warp_instrs` store instructions
    /// moving `bytes` total. `scope` tells the sanitizer whether the data is
    /// consumed warp-synchronously or crosses warps (requiring a barrier
    /// before the matching [`Self::smem_load`]).
    #[inline]
    pub fn smem_store(&mut self, warp_instrs: u64, bytes: u64, scope: SmemScope) {
        if !self.record {
            return;
        }
        self.cost.st_shared_instrs += warp_instrs;
        self.cost.shared_bytes += bytes;
        if let Some(san) = self.san.as_deref_mut() {
            san.note_smem_store(bytes, scope);
        }
    }

    /// Aggregate shared-memory readback; mirror of [`Self::smem_store`].
    #[inline]
    pub fn smem_load(&mut self, warp_instrs: u64, bytes: u64, scope: SmemScope) {
        if !self.record {
            return;
        }
        self.cost.ld_shared_instrs += warp_instrs;
        self.cost.shared_bytes += bytes;
        if let Some(san) = self.san.as_deref_mut() {
            san.note_smem_load(scope);
        }
    }

    /// Sector-accurate contiguous global-load traffic for callers that
    /// account load *instructions* separately (bulk staging loops). Adds
    /// sectors and runs memcheck; no instruction is counted.
    #[inline]
    pub fn ld_global_trace(&mut self, buf: BufferId, byte_addr: u64, bytes: u64) {
        if !self.record {
            return;
        }
        self.cost.gmem[buf.0 as usize].ld_sectors += memory::sectors_contiguous(byte_addr, bytes);
        if let Some(san) = self.san.as_deref_mut() {
            san.check_global(buf.0 as usize, byte_addr, bytes);
        }
    }

    /// Sector-accurate contiguous global-store traffic; mirror of
    /// [`Self::ld_global_trace`].
    #[inline]
    pub fn st_global_trace(&mut self, buf: BufferId, byte_addr: u64, bytes: u64) {
        if !self.record {
            return;
        }
        self.cost.gmem[buf.0 as usize].st_sectors += memory::sectors_contiguous(byte_addr, bytes);
        if let Some(san) = self.san.as_deref_mut() {
            san.check_global(buf.0 as usize, byte_addr, bytes);
        }
    }

    /// Batched form of [`Self::ld_global_trace`]: `count` rows of `bytes`
    /// contiguous bytes each, row `i` starting at `base + i * stride_bytes`.
    ///
    /// Bit-identical to calling `ld_global_trace` once per row — the sector
    /// count of a contiguous access depends only on `byte_addr %
    /// SECTOR_BYTES` and its length, so when the stride is a whole number of
    /// sectors every row costs the same and one multiply replaces the loop.
    /// Ragged strides (or an armed dynamic boundscheck, which must see every
    /// row's address) fall back to the per-row loop.
    #[inline]
    pub fn ld_global_trace_tiled(
        &mut self,
        buf: BufferId,
        base: u64,
        stride_bytes: u64,
        count: u64,
        bytes: u64,
    ) {
        if !self.record {
            return;
        }
        if !self.san_checks_bounds() && stride_bytes.is_multiple_of(memory::SECTOR_BYTES) {
            self.cost.gmem[buf.0 as usize].ld_sectors +=
                count * memory::sectors_contiguous(base, bytes);
        } else {
            for i in 0..count {
                self.ld_global_trace(buf, base + i * stride_bytes, bytes);
            }
        }
    }

    /// Batched form of [`Self::st_global_trace`]; mirror of
    /// [`Self::ld_global_trace_tiled`].
    #[inline]
    pub fn st_global_trace_tiled(
        &mut self,
        buf: BufferId,
        base: u64,
        stride_bytes: u64,
        count: u64,
        bytes: u64,
    ) {
        if !self.record {
            return;
        }
        if !self.san_checks_bounds() && stride_bytes.is_multiple_of(memory::SECTOR_BYTES) {
            self.cost.gmem[buf.0 as usize].st_sectors +=
                count * memory::sectors_contiguous(base, bytes);
        } else {
            for i in 0..count {
                self.st_global_trace(buf, base + i * stride_bytes, bytes);
            }
        }
    }

    /// `warp_instrs` FMA warp instructions performing `scalar_fmas` useful
    /// scalar fused multiply-adds (2 FLOPs each).
    #[inline]
    pub fn fma(&mut self, warp_instrs: u64, scalar_fmas: u64) {
        if !self.record {
            return;
        }
        self.cost.fma_instrs += warp_instrs;
        self.cost.flops += 2 * scalar_fmas;
    }

    /// Non-FMA floating-point warp instructions performing `scalar_ops` FLOPs
    /// (e.g. the exp/add/div of the sparse softmax).
    #[inline]
    pub fn fp(&mut self, warp_instrs: u64, scalar_ops: u64) {
        if !self.record {
            return;
        }
        self.cost.fp_instrs += warp_instrs;
        self.cost.flops += scalar_ops;
    }

    /// Warp shuffle instructions (SDDMM's cross-lane reduction).
    #[inline]
    pub fn shfl(&mut self, n: u64) {
        if !self.record {
            return;
        }
        self.cost.shfl_instrs += n;
    }

    /// Integer / address / predicate / control instructions.
    #[inline]
    pub fn misc(&mut self, n: u64) {
        if !self.record {
            return;
        }
        self.cost.misc_instrs += n;
    }

    /// A `__syncthreads()` barrier.
    #[inline]
    pub fn bar_sync(&mut self) {
        if !self.record {
            return;
        }
        self.cost.barriers += 1;
        if let Some(san) = self.san.as_deref_mut() {
            san.note_barrier();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ld_global_counts_instruction_and_sectors() {
        let mut ctx = BlockContext::new(true);
        let b = BufferId(0);
        // Full warp, vec4, f32: 512 bytes aligned -> 16 sectors, 1 instruction.
        ctx.ld_global(b, 0, 32, 4, 4);
        assert_eq!(ctx.cost.ld_global_instrs, 1);
        assert_eq!(ctx.cost.gmem[0].ld_sectors, 16);
    }

    #[test]
    fn misaligned_load_costs_extra_sector() {
        let mut a = BlockContext::new(true);
        let mut m = BlockContext::new(true);
        a.ld_global(BufferId(0), 0, 32, 1, 4); // 128B aligned: 4 sectors
        m.ld_global(BufferId(0), 20, 32, 1, 4); // 128B at offset 20: 5 sectors
        assert_eq!(a.cost.gmem[0].ld_sectors, 4);
        assert_eq!(m.cost.gmem[0].ld_sectors, 5);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = BlockContext::new(true);
        a.fma(10, 320);
        a.ld_global(BufferId(1), 0, 32, 1, 4);
        let mut total = BlockCost::default();
        total.merge(&a.cost);
        total.merge(&a.cost);
        assert_eq!(total.fma_instrs, 20);
        assert_eq!(total.flops, 2 * 320 * 2);
        assert_eq!(total.gmem[1].ld_sectors, 8);
    }

    #[test]
    fn tiled_trace_is_bit_identical_to_per_row_loop() {
        // Aligned and misaligned bases, sector-multiple and ragged strides.
        for &(base, stride, count, bytes) in &[
            (0u64, 512u64, 16u64, 512u64),
            (20, 512, 16, 128),
            (0, 300, 7, 96),  // ragged stride: falls back to the loop
            (13, 96, 33, 40), // misaligned base, sector-multiple stride
            (64, 32, 1, 32),  // single row
            (0, 128, 0, 64),  // empty tile
        ] {
            let mut tiled = BlockContext::new(false);
            let mut looped = BlockContext::new(false);
            tiled.ld_global_trace_tiled(BufferId(2), base, stride, count, bytes);
            tiled.st_global_trace_tiled(BufferId(3), base, stride, count, bytes);
            for i in 0..count {
                looped.ld_global_trace(BufferId(2), base + i * stride, bytes);
                looped.st_global_trace(BufferId(3), base + i * stride, bytes);
            }
            assert_eq!(
                tiled.cost, looped.cost,
                "tiled trace diverged at base={base} stride={stride} count={count} bytes={bytes}"
            );
        }
    }

    #[test]
    fn replay_context_skips_recording_and_reports_it() {
        let mut ctx = BlockContext::replay();
        assert!(ctx.functional());
        assert!(!ctx.recording());
        ctx.ld_global_trace_tiled(BufferId(0), 0, 128, 8, 128);
        assert_eq!(ctx.cost, BlockCost::default());
    }

    #[test]
    fn total_instrs_sums_all_classes() {
        let mut ctx = BlockContext::new(false);
        ctx.fma(1, 32);
        ctx.misc(2);
        ctx.shfl(3);
        ctx.ld_shared(32, 1, 4, 1);
        assert_eq!(ctx.cost.total_instrs(), 7);
    }
}
