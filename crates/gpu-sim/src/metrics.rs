//! A registry of monotonic profiler counters, snapshot-able as JSON.
//!
//! Where [`crate::trace`] records *events* (and costs a lock per event while
//! enabled), this module keeps *running totals* that are always on: every
//! launch, cache lookup, eviction, fault, and sanitizer run bumps a counter
//! in the [`global`] registry. A [`MetricsSnapshot`] freezes the totals for
//! reports and for the `trace_model` CI regression gate.
//!
//! Counters are process-wide and monotonic (only [`MetricsRegistry::reset`]
//! zeroes them), so concurrent sweeps simply sum. Tests that need exact
//! counts use a local [`MetricsRegistry`] or single-process bins
//! (`trace_model`), not the global one — parallel tests share it.
//!
//! ## Counter vocabulary
//!
//! | counter | meaning |
//! |---|---|
//! | `launches` | launches recorded (simulated + cache replays) |
//! | `launches_replayed` | launches served from a [`crate::LaunchCache`] |
//! | `sim_time_ns` | total simulated time, nanoseconds |
//! | `flops` | useful scalar FLOPs across launches |
//! | `dram_bytes` | DRAM bytes moved across launches |
//! | `blocks` | thread blocks launched |
//! | `cache_hits` / `cache_misses` | launch-cache lookups |
//! | `cache_inserts` / `cache_evictions` | launch-cache population churn |
//! | `dedup_blocks_total` / `dedup_blocks_executed` | structural block dedup (ratio = executed/total) |
//! | `faults_injected` | faults delivered by a [`crate::FaultPlan`] |
//! | `sanitizer_runs` / `sanitizer_violations` | sanitized launches and findings |
//! | `static_audits` / `static_checks_proven` | static launch audits and classes proven |
//! | `sanitizer_checks_skipped` | dynamic check classes disarmed by a static proof |
//! | `sanitizer_skips` | whole sanitize runs skipped on a fingerprint-identical cache hit |
//! | `dispatch_static_refuted` | launches rejected at dispatch by the static auditor |
//! | `dispatch_degraded` / `dispatch_failed_attempts` | degradation-ladder traffic |
//! | `dispatch_rung_*` | served requests per ladder rung (`sputnik`, `heuristic`, `fallback`, `cpu_reference`) |
//! | `serve_offered` / `serve_served` / `serve_shed` / `serve_rejected` | front-door outcome totals |
//! | `serve_late` / `serve_batches` / `serve_degraded` | SLO misses, launch windows, degraded serves |
//! | `joint_tiles_total` / `joint_tiles_skipped` | pattern-LUT probes issued by joint-sparsity launches, and how many hit dead tiles (skip rate = skipped/total) |

use crate::launch::LaunchStats;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

/// A set of named monotonic `u64` counters behind one lock.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<&'static str, u64>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub const fn new() -> Self {
        Self {
            counters: Mutex::new(BTreeMap::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<&'static str, u64>> {
        // Poisoning only means a panic elsewhere mid-increment; the totals
        // themselves are still coherent.
        match self.counters.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Add `delta` to a counter, creating it at zero first if needed.
    pub fn incr(&self, name: &'static str, delta: u64) {
        *self.lock().entry(name).or_insert(0) += delta;
    }

    /// Bump several counters under one lock acquisition.
    pub fn incr_many(&self, deltas: &[(&'static str, u64)]) {
        let mut map = self.lock();
        for &(name, delta) in deltas {
            *map.entry(name).or_insert(0) += delta;
        }
    }

    /// Record one launch's contribution to the standard counters.
    /// `replayed` marks launches served from a [`crate::LaunchCache`].
    pub fn record_launch(&self, stats: &LaunchStats, replayed: bool) {
        let ns = (stats.time_us * 1e3).round().max(0.0) as u64;
        self.incr_many(&[
            ("launches", 1),
            ("launches_replayed", u64::from(replayed)),
            ("sim_time_ns", ns),
            ("flops", stats.flops),
            ("dram_bytes", stats.dram_bytes),
            ("blocks", stats.blocks),
        ]);
    }

    /// Current value of a counter (0 if never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.lock().get(name).copied().unwrap_or(0)
    }

    /// Zero every counter.
    pub fn reset(&self) {
        self.lock().clear();
    }

    /// Freeze the current totals.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .lock()
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
        }
    }
}

/// The process-wide registry every launch path reports into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: MetricsRegistry = MetricsRegistry::new();
    &GLOBAL
}

/// A frozen, sorted view of a registry's counters.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// (name, value), sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl MetricsSnapshot {
    pub fn get(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Total simulated time in microseconds (from `sim_time_ns`).
    pub fn sim_time_us(&self) -> f64 {
        self.get("sim_time_ns") as f64 / 1e3
    }

    /// Fraction of blocks the dedup engine actually executed (1.0 when the
    /// dedup path never ran).
    pub fn dedup_ratio(&self) -> f64 {
        let total = self.get("dedup_blocks_total");
        if total == 0 {
            return 1.0;
        }
        self.get("dedup_blocks_executed") as f64 / total as f64
    }

    /// Serialize as one flat JSON object, stable key order. (The vendored
    /// serde stub cannot serialize, so this is written by hand; parse it
    /// back with [`crate::trace::parse_json`].)
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"metrics\": {\n");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            out.push_str(&format!("    \"{name}\": {value}{comma}\n"));
        }
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = MetricsRegistry::new();
        m.incr("launches", 1);
        m.incr("launches", 2);
        m.incr_many(&[("flops", 100), ("dram_bytes", 7)]);
        assert_eq!(m.get("launches"), 3);
        assert_eq!(m.get("flops"), 100);
        assert_eq!(m.get("missing"), 0);
        let snap = m.snapshot();
        assert_eq!(snap.get("dram_bytes"), 7);
        m.reset();
        assert_eq!(m.get("launches"), 0);
        // The snapshot is unaffected by the reset.
        assert_eq!(snap.get("launches"), 3);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let m = MetricsRegistry::new();
        m.incr("b_counter", 2);
        m.incr("a_counter", 1);
        let json = m.snapshot().to_json();
        let doc = crate::trace::parse_json(&json).expect("snapshot JSON parses");
        let metrics = doc.get("metrics").expect("metrics object");
        assert_eq!(metrics.get("a_counter").and_then(|v| v.as_num()), Some(1.0));
        assert_eq!(metrics.get("b_counter").and_then(|v| v.as_num()), Some(2.0));
    }

    #[test]
    fn dedup_ratio_defaults_to_one() {
        let m = MetricsRegistry::new();
        assert_eq!(m.snapshot().dedup_ratio(), 1.0);
        m.incr("dedup_blocks_total", 10);
        m.incr("dedup_blocks_executed", 4);
        assert_eq!(m.snapshot().dedup_ratio(), 0.4);
    }
}
