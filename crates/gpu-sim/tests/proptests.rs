//! Property-based tests for the simulator's arithmetic invariants.

use gpu_sim::{memory, occupancy, simulate_schedule, BlockRequirements, DeviceConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A contiguous range's sector count is within 1 of bytes/32 and never
    /// less than the aligned minimum.
    #[test]
    fn sectors_contiguous_bounds(addr in 0u64..1_000_000, bytes in 1u64..4096) {
        let s = memory::sectors_contiguous(addr, bytes);
        prop_assert!(s >= bytes.div_ceil(32));
        prop_assert!(s <= bytes.div_ceil(32) + 1);
    }

    /// Misalignment can only add sectors relative to the aligned access.
    #[test]
    fn alignment_never_hurts(addr in 0u64..10_000, bytes in 1u64..2048) {
        let aligned = memory::sectors_contiguous(0, bytes);
        let misaligned = memory::sectors_contiguous(addr, bytes);
        prop_assert!(misaligned >= aligned);
    }

    /// Gather never exceeds per-lane worst case nor undercuts the bytes.
    #[test]
    fn gather_bounds(addrs in proptest::collection::vec(0u64..100_000, 1..32)) {
        let s = memory::sectors_gather(&addrs, 4);
        prop_assert!(s >= 1);
        prop_assert!(s <= addrs.len() as u64 * 2);
    }

    /// Wider vectors never increase the instruction count.
    #[test]
    fn vector_width_monotone(elems in 1u64..100_000, lanes in 1u32..33) {
        let mut prev = u64::MAX;
        for vw in [1u32, 2, 4, 8] {
            let n = memory::vector_instr_count(elems, lanes, vw);
            prop_assert!(n <= prev);
            prop_assert!(n * (lanes as u64) * (vw as u64) >= elems, "must cover all elements");
            prev = n;
        }
    }

    /// Occupancy: at least one block fits when within device limits (<= 64
    /// regs/thread keeps even a 1024-thread block under the register file),
    /// and more shared memory can only reduce residency.
    #[test]
    fn occupancy_monotone_in_smem(threads in 32u32..1024, smem in 0u32..48*1024, regs in 16u32..=64) {
        let dev = DeviceConfig::v100();
        let base = occupancy::occupancy(&dev, &BlockRequirements { threads, smem_bytes: smem, regs_per_thread: regs });
        prop_assert!(base.blocks_per_sm >= 1);
        let more = occupancy::occupancy(&dev, &BlockRequirements { threads, smem_bytes: smem + 8192, regs_per_thread: regs });
        prop_assert!(more.blocks_per_sm <= base.blocks_per_sm);
        prop_assert!(base.fraction <= 1.0);
    }

    /// Schedule invariants: makespan at least the critical path and the
    /// mean load; per-SM busy sums to total work; balance in (0, 1].
    #[test]
    fn schedule_invariants(blocks in proptest::collection::vec(1.0f64..1000.0, 1..400),
                           bps in 1u32..8) {
        let dev = DeviceConfig::v100();
        let res = simulate_schedule(&dev, bps, &blocks);
        let total: f64 = blocks.iter().sum();
        let longest = blocks.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(res.makespan_cycles >= longest - 1e-9);
        prop_assert!(res.makespan_cycles >= total / dev.num_sms as f64 - 1e-6);
        prop_assert!(res.makespan_cycles <= total + 1e-6, "cannot exceed fully serial");
        let busy: f64 = res.per_sm_busy.iter().sum();
        prop_assert!((busy - total).abs() < 1e-6 * total.max(1.0));
        prop_assert!(res.balance > 0.0 && res.balance <= 1.0 + 1e-9);
    }

    /// The Volta first-wave mapping covers SMs without gaps over any full
    /// cycle of indices.
    #[test]
    fn volta_mapping_is_onto(offset in 0u64..10_000) {
        let dev = DeviceConfig::v100();
        let mut seen = vec![false; dev.num_sms as usize];
        for b in offset..offset + dev.num_sms as u64 {
            // Offsets within one period map each block to a distinct SM.
            seen[gpu_sim::volta_first_wave_sm(&dev, b % dev.num_sms as u64) as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
