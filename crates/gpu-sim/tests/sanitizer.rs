//! Integration tests for the kernel sanitizer: seed each class of violation
//! in a deliberately broken kernel and assert the sanitizer reports exactly
//! that violation — and that well-behaved kernels come back clean.

use gpu_sim::{
    AccessPattern, BlockContext, BufferId, BufferSpec, Dim3, Gpu, Kernel, LaunchSummary,
    SanitizerViolation, SanitizerWarning, SmemScope, SyncUnsafeSlice,
};

const BUF: BufferId = BufferId(0);

fn buffer(footprint_bytes: u64) -> Vec<BufferSpec> {
    vec![BufferSpec {
        id: BUF,
        name: "out",
        footprint_bytes,
        pattern: AccessPattern::Streaming,
    }]
}

/// Writes one element past the end of its output slice.
struct OobWriteKernel<'a> {
    out: SyncUnsafeSlice<'a, f32>,
}

impl Kernel for OobWriteKernel<'_> {
    fn name(&self) -> String {
        "seeded_oob_write".into()
    }
    fn grid(&self) -> Dim3 {
        Dim3::x(1)
    }
    fn block_dim(&self) -> Dim3 {
        Dim3::x(32)
    }
    fn buffers(&self) -> Vec<BufferSpec> {
        buffer(8 * 4)
    }
    fn execute_block(&self, _block: Dim3, ctx: &mut BlockContext) {
        ctx.misc(1);
        if ctx.functional() {
            unsafe { self.out.write(8, 1.0) }; // one past the end
        }
    }
}

#[test]
fn oob_slice_write_is_reported() {
    let gpu = Gpu::v100();
    let mut data = vec![0.0f32; 8];
    let kernel = OobWriteKernel {
        out: SyncUnsafeSlice::new(&mut data),
    };
    let (_, report) = gpu.sanitize(&kernel).unwrap();
    assert_eq!(report.violation_count, 1);
    assert_eq!(
        report.violations[0],
        SanitizerViolation::OutOfBoundsWrite { index: 8, len: 8 }
    );
    // The sanitizer suppressed the write, so the buffer is untouched.
    assert!(data.iter().all(|&v| v == 0.0));
}

#[test]
#[should_panic(expected = "out of bounds")]
fn oob_slice_write_panics_outside_sanitize_mode() {
    let gpu = Gpu::v100();
    let mut data = vec![0.0f32; 8];
    let kernel = OobWriteKernel {
        out: SyncUnsafeSlice::new(&mut data),
    };
    let _ = gpu.launch(&kernel);
}

/// Two blocks both write output index 0: a cross-block race unless the
/// kernel declares atomic accumulation.
struct OverlapKernel<'a> {
    out: SyncUnsafeSlice<'a, f32>,
    atomic: bool,
}

impl Kernel for OverlapKernel<'_> {
    fn name(&self) -> String {
        "seeded_overlap".into()
    }
    fn grid(&self) -> Dim3 {
        Dim3::x(2)
    }
    fn block_dim(&self) -> Dim3 {
        Dim3::x(32)
    }
    fn buffers(&self) -> Vec<BufferSpec> {
        buffer(4 * 4)
    }
    fn atomic_output(&self) -> bool {
        self.atomic
    }
    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        ctx.st_global_trace(BUF, 0, 4);
        if ctx.functional() {
            unsafe { self.out.write(0, block.x as f32) };
        }
    }
}

#[test]
fn cross_block_race_is_reported() {
    let gpu = Gpu::v100();
    let mut data = vec![0.0f32; 4];
    let kernel = OverlapKernel {
        out: SyncUnsafeSlice::new(&mut data),
        atomic: false,
    };
    let (_, report) = gpu.sanitize(&kernel).unwrap();
    assert_eq!(report.violation_count, 1);
    assert!(
        matches!(
            report.violations[0],
            SanitizerViolation::CrossBlockRace { index: 0, .. }
        ),
        "expected a race at index 0, got {:?}",
        report.violations[0]
    );
}

#[test]
fn atomic_kernels_are_exempt_from_racecheck() {
    let gpu = Gpu::v100();
    let mut data = vec![0.0f32; 4];
    let kernel = OverlapKernel {
        out: SyncUnsafeSlice::new(&mut data),
        atomic: true,
    };
    let (_, report) = gpu.sanitize(&kernel).unwrap();
    assert_eq!(
        report.violation_count, 0,
        "atomic overlap must not be flagged: {report}"
    );
}

/// Issues a vec4 load from byte address 4 — not 16-byte aligned.
struct MisalignedKernel;

impl Kernel for MisalignedKernel {
    fn name(&self) -> String {
        "seeded_misaligned_vec4".into()
    }
    fn grid(&self) -> Dim3 {
        Dim3::x(1)
    }
    fn block_dim(&self) -> Dim3 {
        Dim3::x(32)
    }
    fn buffers(&self) -> Vec<BufferSpec> {
        buffer(1024)
    }
    fn execute_block(&self, _block: Dim3, ctx: &mut BlockContext) {
        ctx.ld_global(BUF, 4, 32, 4, 4);
    }
}

#[test]
fn misaligned_vector_access_is_reported() {
    let gpu = Gpu::v100();
    let (_, report) = gpu.sanitize(&MisalignedKernel).unwrap();
    assert_eq!(report.violation_count, 1);
    assert_eq!(
        report.violations[0],
        SanitizerViolation::Misaligned {
            buffer: "out",
            byte_addr: 4,
            vec_width: 4,
            elem_bytes: 4
        }
    );
}

/// Multi-warp block stores to shared memory and reads it back with no
/// `bar_sync` in between. With `barrier: true` the kernel is correct.
struct SmemKernel {
    barrier: bool,
}

impl Kernel for SmemKernel {
    fn name(&self) -> String {
        "seeded_smem_raw".into()
    }
    fn grid(&self) -> Dim3 {
        Dim3::x(1)
    }
    fn block_dim(&self) -> Dim3 {
        Dim3::x(64) // two warps: cross-warp visibility needs the barrier
    }
    fn shared_mem_bytes(&self) -> u32 {
        1024
    }
    fn buffers(&self) -> Vec<BufferSpec> {
        buffer(1024)
    }
    fn execute_block(&self, _block: Dim3, ctx: &mut BlockContext) {
        ctx.smem_store(2, 256, SmemScope::Block);
        if self.barrier {
            ctx.bar_sync();
        }
        ctx.smem_load(2, 256, SmemScope::Block);
    }
}

#[test]
fn missing_barrier_is_reported() {
    let gpu = Gpu::v100();
    let (_, report) = gpu.sanitize(&SmemKernel { barrier: false }).unwrap();
    assert_eq!(report.violation_count, 1);
    assert_eq!(
        report.violations[0],
        SanitizerViolation::MissingBarrier { epoch: 0 }
    );
}

#[test]
fn barriered_smem_roundtrip_is_clean() {
    let gpu = Gpu::v100();
    let (_, report) = gpu.sanitize(&SmemKernel { barrier: true }).unwrap();
    assert_eq!(report.violation_count, 0, "{report}");
}

/// Stores past the declared footprint of its global buffer.
struct GlobalOobKernel;

impl Kernel for GlobalOobKernel {
    fn name(&self) -> String {
        "seeded_global_oob".into()
    }
    fn grid(&self) -> Dim3 {
        Dim3::x(1)
    }
    fn block_dim(&self) -> Dim3 {
        Dim3::x(32)
    }
    fn buffers(&self) -> Vec<BufferSpec> {
        buffer(64)
    }
    fn execute_block(&self, _block: Dim3, ctx: &mut BlockContext) {
        ctx.st_global_trace(BUF, 32, 64); // [32, 96) overruns the 64-byte buffer
    }
}

#[test]
fn global_footprint_overrun_is_reported() {
    let gpu = Gpu::v100();
    let (_, report) = gpu.sanitize(&GlobalOobKernel).unwrap();
    assert_eq!(report.violation_count, 1);
    assert_eq!(
        report.violations[0],
        SanitizerViolation::GlobalOutOfBounds {
            buffer: "out",
            byte_addr: 32,
            bytes: 64,
            footprint: 64,
        }
    );
}

/// Heavily bank-conflicted shared loads: a lint warning, not a violation.
struct BankConflictKernel;

impl Kernel for BankConflictKernel {
    fn name(&self) -> String {
        "seeded_bank_conflict".into()
    }
    fn grid(&self) -> Dim3 {
        Dim3::x(1)
    }
    fn block_dim(&self) -> Dim3 {
        Dim3::x(32)
    }
    fn shared_mem_bytes(&self) -> u32 {
        4096
    }
    fn buffers(&self) -> Vec<BufferSpec> {
        buffer(4096)
    }
    fn execute_block(&self, _block: Dim3, ctx: &mut BlockContext) {
        ctx.st_shared(32, 1, 4, 1);
        ctx.bar_sync();
        ctx.ld_shared(32, 1, 4, 16); // 16-way conflict
    }
}

#[test]
fn bank_conflicts_warn_but_do_not_fail() {
    let gpu = Gpu::v100();
    let (_, report) = gpu.sanitize(&BankConflictKernel).unwrap();
    assert_eq!(report.violation_count, 0);
    assert_eq!(report.warning_count, 1);
    assert_eq!(
        report.warnings[0],
        SanitizerWarning::BankConflict { ways: 16 }
    );
}

/// A well-behaved kernel: coalesced IO, barriers where needed, in-bounds
/// writes partitioned across blocks.
struct CleanKernel<'a> {
    out: SyncUnsafeSlice<'a, f32>,
}

impl Kernel for CleanKernel<'_> {
    fn name(&self) -> String {
        "clean_kernel".into()
    }
    fn grid(&self) -> Dim3 {
        Dim3::x(4)
    }
    fn block_dim(&self) -> Dim3 {
        Dim3::x(64)
    }
    fn shared_mem_bytes(&self) -> u32 {
        256
    }
    fn buffers(&self) -> Vec<BufferSpec> {
        buffer(4 * 64 * 4)
    }
    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        let base = block.x as usize * 64;
        ctx.smem_store(2, 256, SmemScope::Block);
        ctx.bar_sync();
        ctx.smem_load(2, 256, SmemScope::Block);
        ctx.st_global_trace(BUF, base as u64 * 4, 64 * 4);
        if ctx.functional() {
            for i in 0..64 {
                unsafe { self.out.write(base + i, i as f32) };
            }
        }
    }
}

#[test]
fn clean_kernel_reports_nothing_and_still_computes() {
    let gpu = Gpu::v100();
    let mut data = vec![0.0f32; 256];
    let kernel = CleanKernel {
        out: SyncUnsafeSlice::new(&mut data),
    };
    let (stats, report) = gpu.sanitize(&kernel).unwrap();
    assert_eq!(report.violation_count, 0, "{report}");
    assert_eq!(report.warning_count, 0);
    assert_eq!(report.blocks, 4);
    assert!(stats.time_us > 0.0);
    assert_eq!(data[65], 1.0); // functional output still produced
}

#[test]
fn sanitized_stats_match_plain_launch() {
    // Sanitizing must not perturb the cost model: same kernel, same stats.
    let gpu = Gpu::v100();
    let mut a = vec![0.0f32; 256];
    let plain = {
        let kernel = CleanKernel {
            out: SyncUnsafeSlice::new(&mut a),
        };
        gpu.launch(&kernel)
    };
    let mut b = vec![0.0f32; 256];
    let kernel = CleanKernel {
        out: SyncUnsafeSlice::new(&mut b),
    };
    let (sanitized, _) = gpu.sanitize(&kernel).unwrap();
    assert_eq!(plain.time_us, sanitized.time_us);
    assert_eq!(plain.instructions, sanitized.instructions);
    assert_eq!(plain.dram_bytes, sanitized.dram_bytes);
}

#[test]
fn launch_summary_accumulates_sanitizer_counts() {
    let gpu = Gpu::v100();
    let mut summary = LaunchSummary::default();

    let mut data = vec![0.0f32; 4];
    let kernel = OverlapKernel {
        out: SyncUnsafeSlice::new(&mut data),
        atomic: false,
    };
    let (stats, report) = gpu.sanitize(&kernel).unwrap();
    summary.add_sanitized(&stats, &report);

    let (stats, report) = gpu.sanitize(&BankConflictKernel).unwrap();
    summary.add_sanitized(&stats, &report);

    assert_eq!(summary.launches, 2);
    assert_eq!(summary.violations, 1);
    assert_eq!(summary.warnings, 1);
}

#[test]
fn sanitize_cached_skips_resanitizing_identical_fingerprints() {
    let gpu = Gpu::v100();
    let cache = gpu_sim::LaunchCache::new();
    let fingerprint = 0xF00D;

    let mut a = vec![0.0f32; 256];
    let (cold_stats, cold_report, hit) = {
        let kernel = CleanKernel {
            out: SyncUnsafeSlice::new(&mut a),
        };
        gpu.sanitize_cached(&cache, fingerprint, &kernel).unwrap()
    };
    assert!(!hit, "first sight of the fingerprint cannot be a cache hit");
    assert_eq!(a[65], 1.0);

    // Same kernel shape, same fingerprint: the whole dynamic pass is
    // skipped, the memoized report replays, the output is still computed,
    // and the skip is counted.
    let skips_before = gpu_sim::metrics::global().get("sanitizer_skips");
    let mut b = vec![0.0f32; 256];
    let (warm_stats, warm_report, hit) = {
        let kernel = CleanKernel {
            out: SyncUnsafeSlice::new(&mut b),
        };
        gpu.sanitize_cached(&cache, fingerprint, &kernel).unwrap()
    };
    assert!(
        hit,
        "fingerprint-identical relaunch must serve from the cache"
    );
    assert_eq!(
        b[65], 1.0,
        "cache hits must still produce functional output"
    );
    assert_eq!(warm_stats.time_us, cold_stats.time_us);
    assert_eq!(warm_report.violation_count, cold_report.violation_count);
    assert_eq!(warm_report.warning_count, cold_report.warning_count);
    assert_eq!(
        gpu_sim::metrics::global().get("sanitizer_skips"),
        skips_before + 1,
        "the skip must be counted in the metrics registry"
    );
}

#[test]
fn sanitize_cached_distinguishes_fingerprints() {
    let gpu = Gpu::v100();
    let cache = gpu_sim::LaunchCache::new();

    let mut a = vec![0.0f32; 256];
    let kernel = CleanKernel {
        out: SyncUnsafeSlice::new(&mut a),
    };
    let (_, _, hit) = gpu.sanitize_cached(&cache, 1, &kernel).unwrap();
    assert!(!hit);
    // A different operand fingerprint is a different launch: no false hit.
    let (_, _, hit) = gpu.sanitize_cached(&cache, 2, &kernel).unwrap();
    assert!(
        !hit,
        "distinct fingerprints must not share sanitize entries"
    );
    let (_, _, hit) = gpu.sanitize_cached(&cache, 1, &kernel).unwrap();
    assert!(hit);
}

#[test]
fn sanitize_cached_replays_violations_from_the_cache() {
    // A violating kernel's memoized report must keep reporting the
    // violation on hits — the cache cannot launder a bad kernel.
    // (GlobalOobKernel violates through its cost trace, so the hit's
    // functional replay is safe to run.)
    let gpu = Gpu::v100();
    let cache = gpu_sim::LaunchCache::new();

    let (_, cold_report, hit) = gpu.sanitize_cached(&cache, 9, &GlobalOobKernel).unwrap();
    assert!(!hit);
    assert_eq!(cold_report.violation_count, 1);

    let (_, report, hit) = gpu.sanitize_cached(&cache, 9, &GlobalOobKernel).unwrap();
    assert!(hit);
    assert_eq!(report.violation_count, 1);
    assert_eq!(report.violations, cold_report.violations);
}
