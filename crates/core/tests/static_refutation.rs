//! Seeded-violation tests for the static launch auditor at the dispatch
//! boundary: one provably-bad kernel per check class, each driven through
//! [`sputnik::launch_audited`] — the same gate every ladder rung uses.
//!
//! The probe kernel **panics in `execute_block`**, so these tests prove the
//! strongest property the auditor claims: a `Refuted` launch is rejected
//! with a typed [`SputnikError::StaticallyRefuted`] *before the simulator
//! executes a single block*. If the gate ever ran the launch first, the
//! panic would fail the test before the assertion was reached.

use gpu_sim::{
    AccessBound, AccessPattern, AlignmentFacts, BarrierFacts, BlockContext, BufferBound, BufferId,
    BufferSpec, Dim3, Gpu, Kernel, StageBound, StaticFacts, VectorClass,
};
use sputnik::SputnikError;

/// A probe whose block body must never run: each constructor seeds exactly
/// one class of statically refutable violation.
struct Refutable {
    grid: Dim3,
    block: Dim3,
    smem: u32,
    facts: StaticFacts,
    executable: bool,
}

const FOOTPRINT: u64 = 4096;

impl Refutable {
    fn clean() -> Self {
        Refutable {
            grid: Dim3::x(4),
            block: Dim3::x(64),
            smem: 1024,
            facts: StaticFacts {
                bounds: Some(vec![BufferBound {
                    slot: 0,
                    bound: AccessBound::Extent(FOOTPRINT),
                }]),
                alignment: AlignmentFacts::ScalarOnly,
                barrier: BarrierFacts::WarpSynchronous,
                stage: StageBound::Bytes(0),
            },
            executable: false,
        }
    }
}

impl Kernel for Refutable {
    fn name(&self) -> String {
        "refutable_probe".into()
    }
    fn grid(&self) -> Dim3 {
        self.grid
    }
    fn block_dim(&self) -> Dim3 {
        self.block
    }
    fn shared_mem_bytes(&self) -> u32 {
        self.smem
    }
    fn buffers(&self) -> Vec<BufferSpec> {
        vec![BufferSpec {
            id: BufferId(0),
            name: "buf",
            footprint_bytes: FOOTPRINT,
            pattern: AccessPattern::Streaming,
        }]
    }
    fn execute_block(&self, _block: Dim3, ctx: &mut BlockContext) {
        assert!(
            self.executable,
            "a statically refuted launch reached execute_block — the \
             dispatch gate ran the simulation before (or instead of) \
             rejecting it"
        );
        ctx.ld_global(BufferId(0), 0, 32, 1, 4);
    }
    fn static_facts(&self) -> StaticFacts {
        self.facts.clone()
    }
}

/// Drive the probe through the dispatch gate and demand a refutation of
/// the expected class.
fn expect_refuted(probe: &Refutable, expected_class: &str) {
    let gpu = Gpu::v100();
    let before = gpu_sim::metrics::global().get("dispatch_static_refuted");
    match sputnik::launch_audited(&gpu, probe) {
        Err(SputnikError::StaticallyRefuted {
            kernel,
            class,
            detail,
        }) => {
            assert_eq!(kernel, "refutable_probe");
            assert_eq!(class, expected_class, "wrong class: {detail}");
            assert!(!detail.is_empty());
        }
        Err(other) => panic!("expected StaticallyRefuted, got: {other}"),
        Ok(_) => panic!("a seeded {expected_class} violation launched successfully"),
    }
    let after = gpu_sim::metrics::global().get("dispatch_static_refuted");
    assert!(
        after > before,
        "dispatch_static_refuted did not count the rejection"
    );
}

#[test]
fn clean_probe_passes_the_gate_and_launches() {
    let mut probe = Refutable::clean();
    probe.executable = true;
    let stats = sputnik::launch_audited(&Gpu::v100(), &probe).expect("clean launch");
    assert_eq!(stats.blocks, 4);
}

#[test]
fn bounds_overrun_is_rejected_before_simulation() {
    let mut probe = Refutable::clean();
    probe.facts.bounds = Some(vec![BufferBound {
        slot: 0,
        bound: AccessBound::Extent(FOOTPRINT + 4),
    }]);
    expect_refuted(&probe, "bounds");
}

#[test]
fn misaligned_vector_class_is_rejected_before_simulation() {
    let mut probe = Refutable::clean();
    probe.facts.alignment = AlignmentFacts::Residues(vec![VectorClass {
        slot: 0,
        vec_width: 4,
        elem_bytes: 4,
        worst_residue: 8,
    }]);
    expect_refuted(&probe, "alignment");
}

#[test]
fn shared_stage_overflow_is_rejected_before_simulation() {
    let mut probe = Refutable::clean();
    // Declares staging more bytes per barrier epoch than the block's
    // shared memory holds.
    probe.facts.stage = StageBound::Bytes(u64::from(probe.smem) + 64);
    expect_refuted(&probe, "shared_capacity");
}

#[test]
fn oversized_block_is_rejected_before_simulation() {
    let mut probe = Refutable::clean();
    probe.block = Dim3::x(2048); // device max is 1024 threads per block
    expect_refuted(&probe, "grid_occupancy");
}

#[test]
fn barrier_free_multiwarp_producer_is_rejected_before_simulation() {
    let mut probe = Refutable::clean();
    // Multi-warp block staging through shared memory with no barrier at
    // all: consumers can never synchronize with producers.
    probe.facts.barrier = BarrierFacts::NoBarrier;
    expect_refuted(&probe, "barrier_structure");
}
