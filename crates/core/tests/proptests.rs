//! Property-based tests: the SpMM/SDDMM kernels agree with the CPU
//! references under arbitrary shapes, sparsities, and configurations, and
//! the ROMA aligner's algebra holds for all inputs.

use gpu_sim::Gpu;
use proptest::prelude::*;
use sparse::{gen, Matrix};
use sputnik::{reference, MemoryAligner, SddmmConfig, SpmmConfig};

fn spmm_config() -> impl Strategy<Value = SpmmConfig> {
    (
        prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
        prop_oneof![Just(32u32), Just(64)],
        prop_oneof![Just(1u32), Just(2), Just(4)],
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_filter_map(
            "subwarp must fit a warp",
            |(y, x, v, swz, roma, pre, res)| {
                let cfg = SpmmConfig {
                    block_items_y: y,
                    block_items_x: x,
                    vector_width: v,
                    row_swizzle: swz,
                    roma,
                    index_prescale: pre,
                    residue_unroll: res,
                    ..SpmmConfig::default()
                };
                (cfg.threads_x() <= 32).then_some(cfg)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid configuration computes the same SpMM as the reference.
    #[test]
    fn spmm_matches_reference_under_any_config(
        cfg in spmm_config(),
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        sparsity in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let a = gen::uniform(m, k, sparsity, seed);
        let b = Matrix::<f32>::random(k, n, seed ^ 0xb);
        let gpu = Gpu::v100();
        let (c, stats) = sputnik::spmm(&gpu, &a, &b, cfg);
        let expect = reference::spmm(&a, &b);
        prop_assert!(c.max_abs_diff(&expect) < 1e-3, "cfg {:?}", cfg);
        prop_assert!(stats.time_us.is_finite() && stats.time_us > 0.0);
    }

    /// SDDMM agrees with the reference for arbitrary shapes and widths.
    #[test]
    fn sddmm_matches_reference(
        m in 1usize..40,
        cols in 1usize..40,
        k in 1usize..64,
        sparsity in 0.0f64..1.0,
        vw in prop_oneof![Just(1u32), Just(2), Just(4)],
        tpo in prop_oneof![Just(8u32), Just(16), Just(32)],
        seed in 0u64..1000,
    ) {
        let mask = gen::uniform(m, cols, sparsity, seed);
        let lhs = Matrix::<f32>::random(m, k, seed ^ 0x1);
        let rhs = Matrix::<f32>::random(cols, k, seed ^ 0x2);
        let gpu = Gpu::v100();
        let cfg = SddmmConfig { vector_width: vw, threads_per_output_tile: tpo, ..SddmmConfig::default() };
        let (d, _) = sputnik::sddmm(&gpu, &lhs, &rhs, &mask, cfg);
        let expect = reference::sddmm(&lhs, &rhs, &mask);
        for (got, want) in d.values().iter().zip(expect.values()) {
            prop_assert!((got - want).abs() < 1e-3 * (1.0 + want.abs()));
        }
    }

    /// ROMA algebra: the aligned offset is aligned, never past the row
    /// start, and masking exactly covers the backed-up prefix.
    #[test]
    fn roma_aligner_algebra(offset in 0usize..10_000, nnz in 0usize..512,
                            vw in prop_oneof![Just(1u32), Just(2), Just(4), Just(8)]) {
        let a = MemoryAligner::new(offset, nnz, vw);
        prop_assert_eq!(a.aligned_offset() % vw as usize, 0);
        prop_assert!(a.aligned_offset() <= offset);
        prop_assert!(offset - a.aligned_offset() < vw as usize);
        prop_assert_eq!(a.prefix(), offset - a.aligned_offset());
        prop_assert_eq!(a.aligned_nonzeros(), nnz + a.prefix());
        for i in 0..a.prefix() {
            prop_assert!(a.is_masked(i));
        }
        prop_assert!(!a.is_masked(a.prefix()));
    }

    /// Sparse softmax always yields stochastic rows (sum 1, all positive)
    /// regardless of the value scale.
    #[test]
    fn softmax_stochastic(m in 1usize..32, cols in 1usize..32, scale in 0.01f32..100.0, seed in 0u64..500) {
        let base = gen::uniform(m, cols, 0.5, seed);
        let scaled = base.with_values(base.values().iter().map(|v| v * scale).collect());
        let gpu = Gpu::v100();
        let (s, _) = sputnik::sparse_softmax(&gpu, &scaled);
        for r in 0..m {
            let (_, vals) = s.row(r);
            if vals.is_empty() { continue; }
            let sum: f32 = vals.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(vals.iter().all(|&v| v >= 0.0));
        }
    }
}
