//! End-to-end fault-tolerance tests: injected device faults across the
//! whole stack, the dispatch degradation ladder, and the zero-overhead
//! guarantee for fault-free operation.

use gpu_sim::{FaultKind, FaultPlan, Gpu};
use sparse::{gen, Matrix};
use sputnik::dispatch::{self, DispatchPolicy, Rung};
use sputnik::{reference, try_sddmm, try_spmm, SddmmConfig, SpmmConfig, SputnikError};

fn problem(seed: u64) -> (sparse::CsrMatrix<f32>, Matrix<f32>) {
    let a = gen::uniform(48, 96, 0.7, seed);
    let b = Matrix::<f32>::random(96, 32, seed + 1);
    (a, b)
}

#[test]
fn try_spmm_surfaces_injected_faults_as_errors() {
    let (a, b) = problem(100);
    let gpu = Gpu::v100().with_fault_plan(FaultPlan::fail_all(FaultKind::EccError));
    let err = try_spmm(&gpu, &a, &b, SpmmConfig::default()).expect_err("launch must fault");
    assert!(matches!(err, SputnikError::DeviceFault(_)));
}

#[test]
fn try_sddmm_surfaces_injected_faults_as_errors() {
    let mask = gen::uniform(24, 24, 0.6, 102);
    let lhs = Matrix::<f32>::random(24, 32, 103);
    let rhs = Matrix::<f32>::random(24, 32, 104);
    let gpu = Gpu::v100().with_fault_plan(FaultPlan::fail_all(FaultKind::LaunchTimeout));
    let err =
        try_sddmm(&gpu, &lhs, &rhs, &mask, SddmmConfig::default()).expect_err("launch must fault");
    assert!(matches!(err, SputnikError::DeviceFault(_)));
    // Same device, no plan: succeeds and matches the reference.
    let gpu = Gpu::v100();
    let (d, _) = try_sddmm(&gpu, &lhs, &rhs, &mask, SddmmConfig::default()).expect("clean launch");
    let expect = reference::sddmm(&lhs, &rhs, &mask);
    for (got, want) in d.values().iter().zip(expect.values()) {
        assert!((got - want).abs() < 1e-3);
    }
}

/// The headline acceptance criterion: with a plan failing 100% of Sputnik
/// launches, dispatch still returns bit-correct results via the fallback
/// kernel (whose name a sputnik-filtered plan does not match).
#[test]
fn dispatch_survives_total_sputnik_failure_bit_correct() {
    let (a, b) = problem(200);
    let gpu =
        Gpu::v100().with_fault_plan(FaultPlan::fail_all(FaultKind::EccError).matching("sputnik"));
    let (out, report) = dispatch::spmm(
        &gpu,
        &a,
        &b,
        SpmmConfig::default(),
        &DispatchPolicy::default(),
    )
    .expect("dispatch must not fail");
    assert_eq!(report.served_by, Rung::Fallback);
    assert!(
        !report.attempts.is_empty(),
        "the failed sputnik attempts are recorded"
    );
    assert!(
        report.backoff_us > 0.0,
        "transient faults trigger retries with backoff"
    );
    let expect = reference::spmm(&a, &b);
    assert_eq!(
        out.as_slice(),
        expect.as_slice(),
        "bit-identical to the CPU reference"
    );
}

/// When every launch faults — fallback included — the ladder bottoms out at
/// host execution and the result is still bit-correct.
#[test]
fn dispatch_survives_total_device_failure_via_cpu() {
    let (a, b) = problem(300);
    let gpu = Gpu::v100().with_fault_plan(FaultPlan::fail_all(FaultKind::EccError));
    let (out, report) = dispatch::spmm(
        &gpu,
        &a,
        &b,
        SpmmConfig::default(),
        &DispatchPolicy::default(),
    )
    .expect("dispatch must not fail");
    assert_eq!(report.served_by, Rung::CpuReference);
    assert!(report.stats.is_none(), "no launch served this call");
    let expect = reference::spmm(&a, &b);
    assert_eq!(out.as_slice(), expect.as_slice());
}

/// Silent corruption: the launch "succeeds" but the output is poisoned.
/// The NaN/Inf guard must detect it and degrade.
#[test]
fn dispatch_detects_poisoned_output() {
    let (a, b) = problem(400);
    let gpu = Gpu::v100()
        .with_fault_plan(FaultPlan::fail_all(FaultKind::PoisonOutput).matching("sputnik"));
    let (out, report) = dispatch::spmm(
        &gpu,
        &a,
        &b,
        SpmmConfig::default(),
        &DispatchPolicy::default(),
    )
    .expect("dispatch must not fail");
    assert_eq!(report.served_by, Rung::Fallback);
    assert!(report
        .attempts
        .iter()
        .all(|at| matches!(at.error, SputnikError::CorruptOutput { .. })));
    let expect = reference::spmm(&a, &b);
    assert_eq!(out.as_slice(), expect.as_slice());
    assert!(out.as_slice().iter().all(|v| v.is_finite()));
}

/// The checksum guard alone (finite scan disabled) also catches poisoning —
/// including the NaN-propagation case, which must not slip through the
/// tolerance comparison.
#[test]
fn checksum_guard_catches_corruption_without_finite_scan() {
    let (a, b) = problem(500);
    let gpu = Gpu::v100()
        .with_fault_plan(FaultPlan::fail_all(FaultKind::PoisonOutput).matching("sputnik"));
    let policy = DispatchPolicy {
        check_finite: false,
        ..DispatchPolicy::default()
    };
    let (out, report) =
        dispatch::spmm(&gpu, &a, &b, SpmmConfig::default(), &policy).expect("must not fail");
    assert_eq!(report.served_by, Rung::Fallback);
    let expect = reference::spmm(&a, &b);
    assert_eq!(out.as_slice(), expect.as_slice());
}

/// Transient faults that clear (fail-first-N) are absorbed by same-rung
/// retries: the requested configuration still serves.
#[test]
fn transient_fault_recovered_by_retry() {
    let (a, b) = problem(600);
    let gpu = Gpu::v100().with_fault_plan(FaultPlan::fail_first(1, FaultKind::EccError));
    let (out, report) = dispatch::spmm(
        &gpu,
        &a,
        &b,
        SpmmConfig::default(),
        &DispatchPolicy::default(),
    )
    .expect("dispatch must not fail");
    assert_eq!(
        report.served_by,
        Rung::Sputnik,
        "retry on the same rung succeeds"
    );
    assert_eq!(report.attempts.len(), 1);
    assert!(report.backoff_us > 0.0);
    let expect = reference::spmm(&a, &b);
    assert!(out.max_abs_diff(&expect) < 1e-3);
}

/// Fault-rate plans are deterministic per seed: two identical runs degrade
/// identically.
#[test]
fn rate_plans_replay_deterministically() {
    let (a, b) = problem(700);
    let run = || {
        let gpu = Gpu::v100().with_fault_plan(FaultPlan::with_rate(9, 0.8, FaultKind::EccError));
        let mut rungs = Vec::new();
        for _ in 0..6 {
            let (_, report) = dispatch::spmm(
                &gpu,
                &a,
                &b,
                SpmmConfig::default(),
                &DispatchPolicy::default(),
            )
            .expect("dispatch must not fail");
            rungs.push(report.served_by);
        }
        rungs
    };
    assert_eq!(run(), run(), "same seed, same degradation schedule");
}

/// The zero-overhead guarantee: with an empty fault plan, dispatch produces
/// simulated LaunchStats identical to a direct spmm call — the guards run on
/// the host and never perturb the simulation.
#[test]
fn empty_fault_plan_changes_nothing() {
    let (a, b) = problem(800);
    let plain_gpu = Gpu::v100();
    let (direct_out, direct_stats) = sputnik::spmm(&plain_gpu, &a, &b, SpmmConfig::default());

    let guarded_gpu = Gpu::v100().with_fault_plan(FaultPlan::none());
    let (out, report) = dispatch::spmm(
        &guarded_gpu,
        &a,
        &b,
        SpmmConfig::default(),
        &DispatchPolicy::default(),
    )
    .expect("dispatch must not fail");
    assert!(report.clean());
    let stats = report.stats.expect("served by a launch");

    assert_eq!(out.as_slice(), direct_out.as_slice());
    assert_eq!(stats.kernel, direct_stats.kernel);
    assert_eq!(stats.time_us, direct_stats.time_us);
    assert_eq!(stats.instructions, direct_stats.instructions);
    assert_eq!(stats.flops, direct_stats.flops);
    assert_eq!(stats.dram_bytes, direct_stats.dram_bytes);
    assert_eq!(stats.blocks, direct_stats.blocks);
    assert_eq!(stats.makespan_cycles, direct_stats.makespan_cycles);

    let plan = guarded_gpu.fault_plan().expect("plan attached");
    assert!(plan.launches_observed() > 0);
    assert_eq!(plan.faults_injected(), 0);
}

/// Mixed precision rides the same ladder.
#[test]
fn dispatch_handles_half_precision_under_faults() {
    use sparse::Half;
    let a = gen::uniform(24, 48, 0.6, 900).convert::<Half>();
    let mut b = Matrix::<Half>::zeros(48, 32);
    let b32 = Matrix::<f32>::random(48, 32, 901);
    for r in 0..48 {
        for c in 0..32 {
            b.set(r, c, Half::from_f32(b32.get(r, c)));
        }
    }
    let gpu =
        Gpu::v100().with_fault_plan(FaultPlan::fail_all(FaultKind::EccError).matching("sputnik"));
    // Half rounding per element exceeds the default checksum tolerance
    // budgeted for f32 kernels; widen it accordingly.
    let policy = DispatchPolicy {
        checksum_rel_tol: 5e-2,
        ..DispatchPolicy::default()
    };
    let (out, report) = dispatch::spmm(&gpu, &a, &b, SpmmConfig::heuristic::<Half>(32), &policy)
        .expect("dispatch must not fail");
    assert_eq!(report.served_by, Rung::Fallback);
    let expect = reference::spmm(&a.convert::<f32>(), &b.to_f32());
    for (got, want) in out.as_slice().iter().zip(expect.as_slice()) {
        assert!((got.to_f32() - want).abs() <= want.abs() * 0.01 + 0.05);
    }
}
