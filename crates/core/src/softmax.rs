//! Sparse softmax kernel.
//!
//! The paper's sparse Transformer needs a softmax over the nonzero values of
//! each row of a sparse matrix ("we additionally wrote a kernel that
//! computes the softmax function on a sparse matrix", Section VII-C1). One
//! warp processes one row: a max-reduction pass for numerical stability, an
//! exp-and-sum pass, and a normalize-and-store pass, with warp shuffle
//! reductions between passes.

use gpu_sim::{
    AccessBound, AccessPattern, AlignmentFacts, BarrierFacts, BlockContext, BufferBound, BufferId,
    BufferSpec, Dim3, Gpu, Kernel, LaunchStats, StageBound, StaticFacts, SyncUnsafeSlice,
};
use sparse::{CsrMatrix, Scalar};

pub const BUF_VALUES: BufferId = BufferId(0);
pub const BUF_OFFSETS: BufferId = BufferId(1);
pub const BUF_OUT: BufferId = BufferId(2);

/// Warps (= rows) per thread block.
const ROWS_PER_BLOCK: u32 = 4;

/// The simulated sparse-softmax kernel.
pub struct SparseSoftmaxKernel<'a, T: Scalar> {
    m: &'a CsrMatrix<T>,
    out_values: Option<SyncUnsafeSlice<'a, T>>,
    vector_width: u32,
    /// Logit scale folded into the read passes (attention's `1/sqrt(d)`).
    /// `None` is the plain softmax; `Some` meters one extra multiply pass
    /// and tags the launch name, so scaled and unscaled launches can never
    /// alias in the [`gpu_sim::LaunchCache`].
    scale: Option<f32>,
}

impl<'a, T: Scalar> SparseSoftmaxKernel<'a, T> {
    pub fn new(m: &'a CsrMatrix<T>, out_values: &'a mut [T]) -> Self {
        assert_eq!(out_values.len(), m.nnz());
        Self {
            m,
            out_values: Some(SyncUnsafeSlice::new(out_values)),
            vector_width: 16 / T::BYTES,
            scale: None,
        }
    }

    pub fn for_profile(m: &'a CsrMatrix<T>) -> Self {
        Self {
            m,
            out_values: None,
            vector_width: 16 / T::BYTES,
            scale: None,
        }
    }

    /// Fold a logit scale into the kernel: every stored value is read as
    /// `value * scale` before the max/exp/normalize passes. Replaces the
    /// unmetered host-side scale loop the attention path used to run
    /// between launches.
    pub fn with_scale(mut self, scale: f32) -> Self {
        self.scale = Some(scale);
        self
    }
}

impl<T: Scalar> Kernel for SparseSoftmaxKernel<'_, T> {
    fn name(&self) -> String {
        match self.scale {
            None => format!("sputnik_sparse_softmax_{}", T::TAG),
            Some(_) => format!("sputnik_sparse_softmax_scaled_{}", T::TAG),
        }
    }

    fn grid(&self) -> Dim3 {
        Dim3::x((self.m.rows() as u32).div_ceil(ROWS_PER_BLOCK))
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::xy(32, ROWS_PER_BLOCK)
    }

    fn regs_per_thread(&self) -> u32 {
        24
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        let eb = T::BYTES as u64;
        vec![
            BufferSpec {
                id: BUF_VALUES,
                name: "values",
                footprint_bytes: self.m.nnz() as u64 * eb,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_OFFSETS,
                name: "row_offsets",
                footprint_bytes: (self.m.rows() as u64 + 1) * 4,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_OUT,
                name: "out_values",
                footprint_bytes: self.m.nnz() as u64 * eb,
                pattern: AccessPattern::Streaming,
            },
        ]
    }

    /// Static safety facts for the launch auditor.
    ///
    /// Soundness: each warp owns one row and touches `[start, start + len)`
    /// of the value/output buffers (`start + len <= nnz` by CSR), plus an
    /// 8-byte offset pair ending at `(rows + 1) * 4`. All accesses are
    /// scalar (the vector width only shapes instruction counts), warps never
    /// communicate (reductions are intra-warp shuffles), and no shared
    /// memory is declared or staged.
    fn static_facts(&self) -> StaticFacts {
        let eb = T::BYTES as u64;
        let nnz = self.m.nnz() as u64;
        StaticFacts {
            bounds: Some(vec![
                BufferBound {
                    slot: BUF_VALUES.0,
                    bound: AccessBound::Extent(nnz * eb),
                },
                BufferBound {
                    slot: BUF_OFFSETS.0,
                    bound: AccessBound::Extent((self.m.rows() as u64 + 1) * 4),
                },
                BufferBound {
                    slot: BUF_OUT.0,
                    bound: AccessBound::Extent(nnz * eb),
                },
            ]),
            alignment: AlignmentFacts::ScalarOnly,
            barrier: BarrierFacts::WarpSynchronous,
            stage: StageBound::Bytes(0),
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        let eb = T::BYTES;
        let vw = self.vector_width;
        for w in 0..ROWS_PER_BLOCK as usize {
            let row = block.x as usize * ROWS_PER_BLOCK as usize + w;
            if row >= self.m.rows() {
                continue;
            }
            ctx.misc(4);
            ctx.ld_global(BUF_OFFSETS, row as u64 * 4, 2, 1, 4);
            let start = self.m.row_offsets()[row] as usize;
            let len = self.m.row_len(row);
            if len == 0 {
                continue;
            }

            // Two read passes (max, exp+sum) and one write pass. The values
            // are re-read rather than cached: rows can exceed register space.
            // Cost-only math is skipped on cache-hit replays.
            if ctx.recording() {
                let load_instrs = gpu_sim::memory::vector_instr_count(len as u64, 32, vw);
                let sectors = gpu_sim::memory::sectors_contiguous(
                    start as u64 * eb as u64,
                    len as u64 * eb as u64,
                );
                ctx.cost.ld_global_instrs += 3 * load_instrs;
                ctx.cost.gmem[BUF_VALUES.0 as usize].ld_sectors += 3 * sectors;
                // exp on each element + subtract max + divide: ~3 FLOPs each,
                // exp modeled as one MUFU-pipe instruction per element slice.
                let elem_instrs = (len as u64).div_ceil(32);
                if self.scale.is_some() {
                    // The metered logit-scale multiply (one pass).
                    ctx.fp(elem_instrs, len as u64);
                    ctx.cost.flops += len as u64;
                }
                ctx.fp(3 * elem_instrs, 3 * len as u64);
                // Warp reductions: 5 shuffle + 5 op for max, same for sum.
                ctx.shfl(10);
                ctx.fp(10, 10);
                ctx.cost.st_global_instrs += load_instrs;
                ctx.cost.gmem[BUF_OUT.0 as usize].st_sectors += sectors;
                ctx.cost.flops += 3 * len as u64;
            }

            if let (true, Some(out)) = (ctx.functional(), self.out_values.as_ref()) {
                let vals = &self.m.values()[start..start + len];
                // The logit transform: stored value times the folded scale
                // (identity when unscaled — the closure leaves the plain
                // path bit-for-bit untouched).
                let logit = |v: &T| match self.scale {
                    Some(s) => v.to_f32() * s,
                    None => v.to_f32(),
                };
                let max = vals.iter().map(logit).fold(f32::NEG_INFINITY, f32::max);
                if max == f32::INFINITY {
                    // Softmax limit with +inf logits: the mass splits evenly
                    // over the +inf entries, everything else gets zero.
                    // (exp(inf - inf) would be NaN.)
                    let top = vals
                        .iter()
                        .filter(|v| logit(v) == f32::INFINITY)
                        .count()
                        .max(1) as f32;
                    for (i, v) in vals.iter().enumerate() {
                        let p = if logit(v) == f32::INFINITY {
                            1.0 / top
                        } else {
                            0.0
                        };
                        unsafe { out.write(start + i, T::from_f32(p)) };
                    }
                } else if max == f32::NEG_INFINITY {
                    // Every logit is -inf (or NaN, which `f32::max` skips):
                    // no anchor to normalize against, and exp(-inf - -inf)
                    // is NaN — which the dispatch NaN-guard would misread
                    // as a kernel fault. Emit the uniform distribution, the
                    // limit of equally unlikely logits.
                    let p = 1.0 / len as f32;
                    for i in 0..len {
                        unsafe { out.write(start + i, T::from_f32(p)) };
                    }
                } else {
                    // Arena-staged exponentials (the row's shared-memory
                    // tile in the CUDA kernel).
                    let mut exps = ctx.scratch_f32(len);
                    for (e, v) in exps.iter_mut().zip(vals) {
                        *e = (logit(v) - max).exp();
                    }
                    // The max element contributes exp(0) = 1, so a finite
                    // row cannot underflow the sum to zero; the clamp keeps
                    // the division NaN-free even at the denormal edge.
                    let sum: f32 = exps.iter().sum::<f32>().max(f32::MIN_POSITIVE);
                    for (i, &e) in exps.iter().enumerate() {
                        unsafe { out.write(start + i, T::from_f32(e / sum)) };
                    }
                }
            }
        }
    }
}

/// Run the sparse softmax: returns the normalized sparse matrix and stats.
pub fn sparse_softmax<T: Scalar>(gpu: &Gpu, m: &CsrMatrix<T>) -> (CsrMatrix<T>, LaunchStats) {
    let mut values = vec![T::zero(); m.nnz()];
    let stats = {
        let kernel = SparseSoftmaxKernel::new(m, &mut values);
        gpu.launch(&kernel)
    };
    (m.with_values(values), stats)
}

/// Profile the sparse softmax (cost only).
pub fn sparse_softmax_profile<T: Scalar>(gpu: &Gpu, m: &CsrMatrix<T>) -> LaunchStats {
    let kernel = SparseSoftmaxKernel::for_profile(m);
    gpu.profile(&kernel)
}

/// Run the sparse softmax with a folded logit scale: each stored value is
/// read as `value * scale`. This is the attention path's `1/sqrt(d)` —
/// previously a host-side loop between launches with zero simulated cost.
pub fn sparse_softmax_scaled<T: Scalar>(
    gpu: &Gpu,
    m: &CsrMatrix<T>,
    scale: f32,
) -> (CsrMatrix<T>, LaunchStats) {
    let mut values = vec![T::zero(); m.nnz()];
    let stats = {
        let kernel = SparseSoftmaxKernel::new(m, &mut values).with_scale(scale);
        gpu.launch(&kernel)
    };
    (m.with_values(values), stats)
}

/// Profile the scaled sparse softmax (cost only).
pub fn sparse_softmax_scaled_profile<T: Scalar>(
    gpu: &Gpu,
    m: &CsrMatrix<T>,
    scale: f32,
) -> LaunchStats {
    let kernel = SparseSoftmaxKernel::for_profile(m).with_scale(scale);
    gpu.profile(&kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sparse::gen;

    #[test]
    fn matches_reference() {
        let m = gen::uniform(64, 96, 0.8, 41);
        let gpu = Gpu::v100();
        let (s, stats) = sparse_softmax(&gpu, &m);
        let expect = reference::sparse_softmax(&m);
        for (got, want) in s.values().iter().zip(expect.values()) {
            assert!((got - want).abs() < 1e-5);
        }
        assert!(stats.time_us > 0.0);
    }

    #[test]
    fn rows_sum_to_one() {
        let m = gen::attention_mask(256, 32, 0.9, 42);
        // Give the mask non-trivial values (attention logits).
        let m = m.with_values((0..m.nnz()).map(|i| (i % 13) as f32 * 0.3 - 2.0).collect());
        let gpu = Gpu::v100();
        let (s, _) = sparse_softmax(&gpu, &m);
        for r in 0..s.rows() {
            let (_, vals) = s.row(r);
            if vals.is_empty() {
                continue;
            }
            let sum: f32 = vals.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {r}: {sum}");
        }
    }

    #[test]
    fn handles_empty_rows() {
        let m = CsrMatrix::<f32>::from_parts(
            3,
            4,
            vec![0, 2, 2, 3],
            vec![0, 1, 3],
            vec![1.0, 2.0, 3.0],
        )
        .unwrap();
        let gpu = Gpu::v100();
        let (s, _) = sparse_softmax(&gpu, &m);
        assert_eq!(s.row_len(1), 0);
        let (_, vals) = s.row(2);
        assert!(
            (vals[0] - 1.0).abs() < 1e-6,
            "single-element row softmaxes to 1"
        );
    }

    #[test]
    fn mixed_precision_softmax() {
        use sparse::Half;
        let m = gen::uniform(32, 48, 0.7, 44).convert::<Half>();
        let gpu = Gpu::v100();
        let (s, stats) = sparse_softmax(&gpu, &m);
        for r in 0..32 {
            let (_, vals) = s.row(r);
            if vals.is_empty() {
                continue;
            }
            let sum: f32 = vals.iter().map(|v| v.to_f32()).sum();
            assert!(
                (sum - 1.0).abs() < 5e-3,
                "row {r}: {sum} (half-rounding tolerance)"
            );
        }
        let f32_stats = sparse_softmax_profile::<f32>(&gpu, &m.convert::<f32>());
        assert!(
            stats.dram_bytes < f32_stats.dram_bytes,
            "f16 halves the value traffic"
        );
    }

    /// Regression: the normalize pass divided by the exp-sum unguarded, so
    /// rows whose logits drive the sum degenerate (all `-inf`, or a `+inf`
    /// making `exp(inf - inf)` NaN) emitted NaNs — which the dispatch
    /// NaN-guard then misattributed to a kernel fault. Every pathological
    /// row must now produce a finite distribution that sums to one.
    #[test]
    fn pathological_rows_stay_finite() {
        let m = CsrMatrix::<f32>::from_parts(
            4,
            4,
            vec![0, 3, 5, 8, 10],
            vec![0, 1, 2, 0, 3, 1, 2, 3, 0, 2],
            vec![
                // Row 0: all hugely negative but finite.
                -3.0e38,
                -3.0e38,
                -3.0e38,
                // Row 1: all -inf.
                f32::NEG_INFINITY,
                f32::NEG_INFINITY,
                // Row 2: one +inf among finite logits.
                1.0,
                f32::INFINITY,
                -2.0,
                // Row 3: -inf mixed with finite.
                f32::NEG_INFINITY,
                4.0,
            ],
        )
        .unwrap();
        let gpu = Gpu::v100();
        let (s, _) = sparse_softmax(&gpu, &m);
        for r in 0..s.rows() {
            let (_, vals) = s.row(r);
            assert!(
                vals.iter().all(|v| v.is_finite()),
                "row {r} emitted non-finite probabilities: {vals:?}"
            );
            let sum: f32 = vals.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
        let (_, row2) = s.row(2);
        assert_eq!(row2, [0.0, 1.0, 0.0], "+inf logit takes all the mass");
        let (_, row3) = s.row(3);
        assert_eq!(row3[0], 0.0, "-inf logit gets zero mass");
    }

    /// The folded logit scale must be bit-identical to scaling the stored
    /// values on the host first (the behavior the attention path used to
    /// get from its unmetered host loop), and must cost strictly more than
    /// the plain softmax (the multiply pass is metered now).
    #[test]
    fn scaled_softmax_matches_prescaled_values() {
        let m = gen::uniform(96, 80, 0.75, 45);
        let scale = 0.125;
        let gpu = Gpu::v100();
        let (scaled, scaled_stats) = sparse_softmax_scaled(&gpu, &m, scale);
        let prescaled = m.with_values(m.values().iter().map(|v| v * scale).collect());
        let (want, plain_stats) = sparse_softmax(&gpu, &prescaled);
        assert_eq!(scaled.values(), want.values(), "folded scale diverged");
        assert!(
            scaled_stats.instructions > plain_stats.instructions,
            "the scale pass must be metered"
        );
    }

    #[test]
    fn profile_matches_launch() {
        let m = gen::uniform(128, 128, 0.7, 43);
        let gpu = Gpu::v100();
        let (_, launch) = sparse_softmax(&gpu, &m);
        let profile = sparse_softmax_profile(&gpu, &m);
        assert_eq!(launch.instructions, profile.instructions);
    }

    use sparse::CsrMatrix;
}
