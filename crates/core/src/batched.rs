//! Batched kernel launches.
//!
//! Sparse attention runs the *same* sparse topology against many dense
//! operands — one per (head, batch element) — and sparse training reuses one
//! weight topology across micro-batches. These helpers amortize everything
//! amortizable: the row swizzle is computed once, the launches go through a
//! [`gpu_sim::Stream`] so consecutive kernels overlap their launch overhead
//! (as back-to-back launches do on real hardware), and the stream consults a
//! [`LaunchCache`] — the simulated statistics depend on the topology and
//! configuration, not the dense values, so items 2..k of a batch replay item
//! 1's simulation instead of re-running it. The usual bypass rule applies: a
//! [`Gpu`] carrying a fault plan simulates every launch in full.
//!
//! [`spmm_batched`] / [`sddmm_batched`] memoize within the one call (a
//! private per-batch cache); the `_cached` variants accept a caller-owned
//! cache so repeated batches (layers, training steps) hit across calls too.

use crate::config::{SddmmConfig, SpmmConfig};
use crate::dispatch::{self, Attempt, DispatchPolicy, DispatchReport, Rung};
use crate::error::{is_transient, SputnikError};
use crate::reference;
use crate::sddmm::{self, SddmmKernel};
use crate::spmm::{self, SpmmKernel};
use gpu_sim::{Gpu, LaunchCache, LaunchStats, Stream};
use sparse::{CsrMatrix, Matrix, RowSwizzle, Scalar};

/// Per-item attribution for batched launches that bypass the launch cache
/// because the [`Gpu`] carries a fault plan. The bypass itself is silent
/// (it happens inside [`Gpu::try_launch_cached`]), which used to leave chaos
/// runs with no record of *which* batch items consumed fault-schedule
/// indices — this instant restores the audit trail.
fn note_fault_plan_bypass(gpu: &Gpu, op: &str, item: usize) {
    if gpu.fault_plan().is_some() && gpu_sim::trace::enabled() {
        gpu_sim::trace::instant(
            "batched",
            "batched",
            &format!("fault-plan bypass: {op} item {item} simulated in full"),
        );
    }
}

/// Result of a batched launch: per-item outputs plus stream-level timing.
pub struct BatchedResult<T> {
    pub outputs: Vec<T>,
    /// Total simulated time with launch overhead pipelined.
    pub stream_us: f64,
    /// Sum of standalone launch times (what naive sequential launches cost).
    pub naive_us: f64,
    /// Launches whose statistics were replayed from the launch cache.
    pub cache_hits: u64,
}

impl<T> BatchedResult<T> {
    /// How much the stream pipelining saved.
    ///
    /// Invariant: **never negative**. Pipelining can only hide launch
    /// overhead behind execution, so a stream slower than its naive
    /// back-to-back sum is a model violation — the batched constructors
    /// assert it on every batch.
    pub fn overhead_saved_us(&self) -> f64 {
        self.naive_us - self.stream_us
    }
}

/// Check the stream-vs-naive model invariant for a finished batch.
fn assert_stream_invariant(stream_us: f64, naive_us: f64) {
    assert!(
        stream_us <= naive_us + 1e-9,
        "model violation: stream time {stream_us} us exceeds naive sequential {naive_us} us \
         (pipelining can only hide overhead)"
    );
}

/// SpMM of one sparse matrix against many dense operands, memoized within
/// the batch (every item shares `a`'s topology and `cfg`, so items 2..k are
/// cache replays).
pub fn spmm_batched<T: Scalar>(
    gpu: &Gpu,
    a: &CsrMatrix<T>,
    bs: &[&Matrix<T>],
    cfg: SpmmConfig,
) -> BatchedResult<Matrix<T>> {
    let cache = LaunchCache::new();
    spmm_batched_cached(gpu, &cache, a, bs, cfg)
}

/// [`spmm_batched`] through a caller-owned [`LaunchCache`], so repeated
/// batches on the same topology hit across calls.
pub fn spmm_batched_cached<T: Scalar>(
    gpu: &Gpu,
    cache: &LaunchCache,
    a: &CsrMatrix<T>,
    bs: &[&Matrix<T>],
    cfg: SpmmConfig,
) -> BatchedResult<Matrix<T>> {
    let swizzle = if cfg.row_swizzle {
        RowSwizzle::by_length_desc(a)
    } else {
        RowSwizzle::identity(a.rows())
    };
    let mut stream = Stream::with_cache(gpu, cache);
    let mut outputs = Vec::with_capacity(bs.len());
    let mut naive_us = 0.0;
    for (item, b) in bs.iter().enumerate() {
        note_fault_plan_bypass(gpu, "spmm", item);
        let mut out = Matrix::<T>::zeros(a.rows(), b.cols());
        let fingerprint = spmm::operand_fingerprint(a, b.cols());
        let stats = {
            let kernel = SpmmKernel::new(a, b, &mut out, &swizzle, cfg);
            stream.launch_cached(fingerprint, &kernel)
        };
        naive_us += stats.time_us;
        outputs.push(out);
    }
    let stream_us = stream.total_us();
    assert_stream_invariant(stream_us, naive_us);
    BatchedResult {
        outputs,
        stream_us,
        naive_us,
        cache_hits: stream.cache_hits(),
    }
}

/// SDDMM of one mask against many (lhs, rhs) pairs — the per-head QK^T of
/// sparse attention ("the sparse attention mask ... is shared by all
/// attention heads and layers"). Memoized within the batch like
/// [`spmm_batched`].
pub fn sddmm_batched<T: Scalar>(
    gpu: &Gpu,
    pairs: &[(&Matrix<T>, &Matrix<T>)],
    mask: &CsrMatrix<T>,
    cfg: SddmmConfig,
) -> BatchedResult<CsrMatrix<T>> {
    let cache = LaunchCache::new();
    sddmm_batched_cached(gpu, &cache, pairs, mask, cfg)
}

/// [`sddmm_batched`] through a caller-owned [`LaunchCache`].
pub fn sddmm_batched_cached<T: Scalar>(
    gpu: &Gpu,
    cache: &LaunchCache,
    pairs: &[(&Matrix<T>, &Matrix<T>)],
    mask: &CsrMatrix<T>,
    cfg: SddmmConfig,
) -> BatchedResult<CsrMatrix<T>> {
    let swizzle = if cfg.row_swizzle {
        RowSwizzle::by_length_desc(mask)
    } else {
        RowSwizzle::identity(mask.rows())
    };
    let mut stream = Stream::with_cache(gpu, cache);
    let mut outputs = Vec::with_capacity(pairs.len());
    let mut naive_us = 0.0;
    for (item, (lhs, rhs)) in pairs.iter().enumerate() {
        note_fault_plan_bypass(gpu, "sddmm", item);
        let mut values = vec![T::zero(); mask.nnz()];
        let fingerprint = sddmm::mask_fingerprint(mask, lhs.cols());
        let stats = {
            let kernel = SddmmKernel::new(lhs, rhs, mask, &mut values, &swizzle, cfg);
            stream.launch_cached(fingerprint, &kernel)
        };
        naive_us += stats.time_us;
        outputs.push(mask.with_values(values));
    }
    let stream_us = stream.total_us();
    assert_stream_invariant(stream_us, naive_us);
    BatchedResult {
        outputs,
        stream_us,
        naive_us,
        cache_hits: stream.cache_hits(),
    }
}

/// Result of a fault-tolerant batched window: per-item outputs plus the
/// [`DispatchReport`] for every item, so serving layers can attribute each
/// request to the degradation rung that produced its answer.
///
/// Timing mirrors [`BatchedResult`]: `stream_us` pipelines the GPU-served
/// launches' overhead exactly like [`gpu_sim::Stream`] would (one exposed
/// launch overhead, subsequent launches hidden behind execution), plus the
/// simulated retry backoff. CPU-served items contribute **no** simulated
/// device time here — the caller owns the host-time model (see
/// `serve::ServePolicy::cpu_service_us`), because how expensive a host
/// fallback is depends on what else the host is doing.
pub struct DispatchedBatch<T> {
    pub outputs: Vec<T>,
    /// Per-item dispatch reports, same order as `outputs`.
    pub reports: Vec<DispatchReport>,
    /// Pipelined simulated time of the GPU-served launches plus backoff.
    pub stream_us: f64,
    /// Sum of standalone GPU launch times plus backoff (naive sequential).
    pub naive_us: f64,
    /// Launches whose statistics were replayed from the launch cache.
    pub cache_hits: u64,
}

impl<T> DispatchedBatch<T> {
    /// Items whose request was served by the host CPU rung (no launch stats).
    pub fn cpu_served(&self) -> u64 {
        self.reports.iter().filter(|r| r.stats.is_none()).count() as u64
    }

    /// Items served by a rung other than the requested configuration.
    pub fn degraded(&self) -> u64 {
        self.reports
            .iter()
            .filter(|r| r.served_by != Rung::Sputnik)
            .count() as u64
    }
}

/// Pipeline the GPU-served launches of a dispatched batch the way
/// [`Stream::total_us`] would: one exposed launch overhead, each
/// non-final kernel hides the next launch's setup unless it is shorter than
/// the short-kernel gap. Backoff (simulated retry delay) is serial in both
/// views. Returns `(stream_us, naive_us)`.
fn pipeline_dispatched(gpu: &Gpu, reports: &[DispatchReport]) -> (f64, f64) {
    let overhead = gpu.device().launch_overhead_us;
    let times: Vec<f64> = reports
        .iter()
        .filter_map(|r| r.stats.as_ref().map(|s| s.time_us))
        .collect();
    let backoff: f64 = reports.iter().map(|r| r.backoff_us).sum();
    let naive_us: f64 = times.iter().sum::<f64>() + backoff;
    let mut stream_us = if times.is_empty() { 0.0 } else { overhead };
    for (i, &t) in times.iter().enumerate() {
        let exec = t - overhead;
        stream_us += if i + 1 < times.len() {
            exec.max(overhead * 0.3)
        } else {
            exec
        };
    }
    (stream_us + backoff, naive_us)
}

/// Fault-tolerant batched SpMM: every item goes through the
/// [`crate::dispatch`] degradation ladder (retry → heuristic → fallback →
/// CPU), so an armed [`gpu_sim::FaultPlan`] degrades individual items
/// instead of killing the batch. Clean items consult `cache` exactly like
/// [`spmm_batched_cached`] (fault-plan GPUs bypass it, and each bypassed
/// item leaves a trace instant for auditability).
///
/// Errors are returned only for deterministic input violations; transient
/// device faults always land on a rung.
pub fn spmm_batched_dispatch<T: Scalar>(
    gpu: &Gpu,
    cache: &LaunchCache,
    a: &CsrMatrix<T>,
    bs: &[&Matrix<T>],
    cfg: SpmmConfig,
    policy: &DispatchPolicy,
) -> Result<DispatchedBatch<Matrix<T>>, SputnikError> {
    let hits_before = cache.hits();
    let mut outputs = Vec::with_capacity(bs.len());
    let mut reports = Vec::with_capacity(bs.len());
    for (item, b) in bs.iter().enumerate() {
        note_fault_plan_bypass(gpu, "spmm-dispatch", item);
        let (out, report) = dispatch::spmm_cached(gpu, cache, a, b, cfg, policy)?;
        outputs.push(out);
        reports.push(report);
    }
    let (stream_us, naive_us) = pipeline_dispatched(gpu, &reports);
    assert_stream_invariant(stream_us, naive_us);
    Ok(DispatchedBatch {
        outputs,
        reports,
        stream_us,
        naive_us,
        cache_hits: cache.hits() - hits_before,
    })
}

/// Scan an SDDMM output for non-finite values (the SDDMM ladder's detection
/// guard; the SpMM checksum has no cheap SDDMM analogue — recomputing the
/// masked dot products *is* the kernel).
fn check_sddmm_output<T: Scalar>(
    out: &CsrMatrix<T>,
    policy: &DispatchPolicy,
    kernel: &str,
) -> Result<(), SputnikError> {
    if !policy.check_finite {
        return Ok(());
    }
    for v in out.values() {
        if !v.to_f32().is_finite() {
            return Err(SputnikError::CorruptOutput {
                kernel: kernel.to_string(),
                reason: "non-finite value in output".into(),
            });
        }
    }
    Ok(())
}

/// One SDDMM launch through the cross-launch cache (the SDDMM analogue of
/// the dispatch module's `launch_sputnik`).
fn launch_sddmm_cached<T: Scalar>(
    gpu: &Gpu,
    cache: &LaunchCache,
    lhs: &Matrix<T>,
    rhs: &Matrix<T>,
    mask: &CsrMatrix<T>,
    swizzle: &RowSwizzle,
    cfg: SddmmConfig,
) -> Result<(CsrMatrix<T>, LaunchStats), SputnikError> {
    let mut values = vec![T::zero(); mask.nnz()];
    let stats = {
        let kernel = SddmmKernel::try_new(lhs, rhs, mask, &mut values, swizzle, cfg)?;
        gpu.try_launch_cached(cache, sddmm::mask_fingerprint(mask, lhs.cols()), &kernel)?
            .0
    };
    Ok((mask.with_values(values), stats))
}

/// Fault-tolerant batched SDDMM: the SDDMM arm of the serving front door.
/// The ladder is shorter than SpMM's — requested config → heuristic config →
/// CPU reference — because there is no separate fallback SDDMM kernel; the
/// rung that served each item still lands in its [`DispatchReport`] so
/// chaos runs stay fully attributed.
pub fn sddmm_batched_dispatch<T: Scalar>(
    gpu: &Gpu,
    cache: &LaunchCache,
    pairs: &[(&Matrix<T>, &Matrix<T>)],
    mask: &CsrMatrix<T>,
    cfg: SddmmConfig,
    policy: &DispatchPolicy,
) -> Result<DispatchedBatch<CsrMatrix<T>>, SputnikError> {
    let hits_before = cache.hits();
    let swizzle_desc = RowSwizzle::by_length_desc(mask);
    let swizzle_id = RowSwizzle::identity(mask.rows());
    let mut outputs = Vec::with_capacity(pairs.len());
    let mut reports = Vec::with_capacity(pairs.len());
    for (item, (lhs, rhs)) in pairs.iter().enumerate() {
        note_fault_plan_bypass(gpu, "sddmm-dispatch", item);
        let heuristic = SddmmConfig::heuristic::<T>(lhs.cols());
        let mut rungs = vec![(Rung::Sputnik, cfg)];
        if heuristic != cfg {
            rungs.push((Rung::Heuristic, heuristic));
        }
        let mut attempts = Vec::new();
        let mut backoff_us = 0.0f64;
        let mut served: Option<(CsrMatrix<T>, DispatchReport)> = None;
        'ladder: for (rung, rung_cfg) in rungs {
            for attempt in 0..policy.attempts_per_rung {
                if attempt > 0 {
                    backoff_us += policy.backoff_base_us * f64::from(1u32 << (attempt - 1));
                }
                let swizzle = if rung_cfg.row_swizzle {
                    &swizzle_desc
                } else {
                    &swizzle_id
                };
                let result = launch_sddmm_cached(gpu, cache, lhs, rhs, mask, swizzle, rung_cfg)
                    .and_then(|(out, stats)| {
                        check_sddmm_output(&out, policy, &stats.kernel)?;
                        Ok((out, stats))
                    });
                match result {
                    Ok((out, stats)) => {
                        if rung != Rung::Sputnik {
                            gpu_sim::metrics::global().incr("dispatch_degraded", 1);
                            if gpu_sim::trace::enabled() {
                                gpu_sim::trace::instant(
                                    "dispatch",
                                    "dispatch",
                                    &format!("degraded: sddmm served by {rung} ({})", stats.kernel),
                                );
                            }
                        }
                        let report = DispatchReport {
                            served_by: rung,
                            stats: Some(stats),
                            attempts: std::mem::take(&mut attempts),
                            backoff_us,
                        };
                        served = Some((out, report));
                        break 'ladder;
                    }
                    Err(err) => {
                        let transient = is_transient(&err);
                        gpu_sim::metrics::global().incr("dispatch_failed_attempts", 1);
                        if gpu_sim::trace::enabled() {
                            gpu_sim::trace::instant(
                                "dispatch",
                                "dispatch",
                                &format!("sddmm rung {rung} attempt {attempt} failed: {err}"),
                            );
                        }
                        attempts.push(Attempt { rung, error: err });
                        if !transient {
                            break;
                        }
                    }
                }
            }
        }
        let (out, report) = served.unwrap_or_else(|| {
            // Last rung: host execution, cannot fail.
            gpu_sim::metrics::global().incr("dispatch_degraded", 1);
            if gpu_sim::trace::enabled() {
                gpu_sim::trace::instant("dispatch", "dispatch", "degraded: sddmm on cpu-reference");
            }
            let out32 = reference::sddmm(&lhs.to_f32(), &rhs.to_f32(), mask);
            let values: Vec<T> = out32.values().iter().map(|&v| T::from_f32(v)).collect();
            (
                mask.with_values(values),
                DispatchReport {
                    served_by: Rung::CpuReference,
                    stats: None,
                    attempts: std::mem::take(&mut attempts),
                    backoff_us,
                },
            )
        });
        outputs.push(out);
        reports.push(report);
    }
    let (stream_us, naive_us) = pipeline_dispatched(gpu, &reports);
    assert_stream_invariant(stream_us, naive_us);
    Ok(DispatchedBatch {
        outputs,
        reports,
        stream_us,
        naive_us,
        cache_hits: cache.hits() - hits_before,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gpu_sim::{FaultKind, FaultPlan};
    use sparse::gen;

    #[test]
    fn batched_spmm_matches_individual_launches() {
        let gpu = Gpu::v100();
        let a = gen::uniform(64, 48, 0.7, 321);
        let b1 = Matrix::<f32>::random(48, 32, 322);
        let b2 = Matrix::<f32>::random(48, 32, 323);
        let cfg = SpmmConfig::heuristic::<f32>(32);
        let result = spmm_batched(&gpu, &a, &[&b1, &b2], cfg);
        assert_eq!(result.outputs.len(), 2);
        assert!(result.outputs[0].max_abs_diff(&reference::spmm(&a, &b1)) < 1e-3);
        assert!(result.outputs[1].max_abs_diff(&reference::spmm(&a, &b2)) < 1e-3);
        assert_eq!(
            result.cache_hits, 1,
            "second item replays the first's simulation"
        );
    }

    #[test]
    fn stream_saves_launch_overhead() {
        let gpu = Gpu::v100();
        let a = gen::uniform(128, 128, 0.8, 324);
        let bs: Vec<Matrix<f32>> = (0..8).map(|i| Matrix::random(128, 64, 325 + i)).collect();
        let refs: Vec<&Matrix<f32>> = bs.iter().collect();
        let result = spmm_batched(&gpu, &a, &refs, SpmmConfig::heuristic::<f32>(64));
        assert!(
            result.stream_us < result.naive_us,
            "pipelining must save time"
        );
        assert!(result.overhead_saved_us() > 0.0);
        assert_eq!(result.cache_hits, 7, "items 2..8 hit the batch cache");
    }

    /// Regression (`overhead_saved_us` < 0): a single tiny kernel used to
    /// pay the short-kernel gap penalty with no successor to pipeline, so a
    /// one-item "batch" came out slower than its naive launch. The saved
    /// overhead must be non-negative for every batch size.
    #[test]
    fn overhead_saved_is_never_negative() {
        let gpu = Gpu::v100();
        // Tiny problem: execution well under the launch overhead.
        let a = gen::uniform(4, 4, 0.5, 331);
        let bs: Vec<Matrix<f32>> = (0..8).map(|i| Matrix::random(4, 4, 332 + i)).collect();
        let cfg = SpmmConfig::heuristic::<f32>(4);
        for k in 1..=bs.len() {
            let refs: Vec<&Matrix<f32>> = bs[..k].iter().collect();
            let result = spmm_batched(&gpu, &a, &refs, cfg);
            assert!(
                result.overhead_saved_us() >= 0.0,
                "batch of {k}: saved {} us is negative (stream {} vs naive {})",
                result.overhead_saved_us(),
                result.stream_us,
                result.naive_us
            );
        }
    }

    #[test]
    fn batched_sddmm_shares_the_mask() {
        let gpu = Gpu::v100();
        let mask = gen::attention_mask(96, 16, 0.9, 326);
        let q1 = Matrix::<f32>::random(96, 32, 327);
        let k1 = Matrix::<f32>::random(96, 32, 328);
        let q2 = Matrix::<f32>::random(96, 32, 329);
        let k2 = Matrix::<f32>::random(96, 32, 330);
        let result = sddmm_batched(
            &gpu,
            &[(&q1, &k1), (&q2, &k2)],
            &mask,
            SddmmConfig::heuristic::<f32>(32),
        );
        for (out, (q, k)) in result.outputs.iter().zip([(&q1, &k1), (&q2, &k2)]) {
            let expect = reference::sddmm(q, k, &mask);
            assert!(out.same_pattern(&expect));
            for (a, b) in out.values().iter().zip(expect.values()) {
                assert!((a - b).abs() < 1e-3);
            }
        }
        assert_eq!(result.cache_hits, 1, "pair 2 replays pair 1's simulation");
    }

    /// The cache replays *statistics*, never values: every item's functional
    /// output must match its own reference even when served from the cache.
    #[test]
    fn cache_hits_do_not_cross_contaminate_outputs() {
        let gpu = Gpu::v100();
        let a = gen::uniform(48, 40, 0.6, 340);
        let bs: Vec<Matrix<f32>> = (0..4).map(|i| Matrix::random(40, 16, 341 + i)).collect();
        let refs: Vec<&Matrix<f32>> = bs.iter().collect();
        let result = spmm_batched(&gpu, &a, &refs, SpmmConfig::heuristic::<f32>(16));
        assert_eq!(result.cache_hits, 3);
        for (out, b) in result.outputs.iter().zip(&bs) {
            assert!(out.max_abs_diff(&reference::spmm(&a, b)) < 1e-3);
        }
    }

    #[test]
    fn shared_cache_hits_across_batched_calls() {
        let gpu = Gpu::v100();
        let cache = LaunchCache::new();
        let a = gen::uniform(64, 48, 0.7, 350);
        let bs: Vec<Matrix<f32>> = (0..3).map(|i| Matrix::random(48, 32, 351 + i)).collect();
        let refs: Vec<&Matrix<f32>> = bs.iter().collect();
        let cfg = SpmmConfig::heuristic::<f32>(32);
        let first = spmm_batched_cached(&gpu, &cache, &a, &refs, cfg);
        assert_eq!(first.cache_hits, 2, "first call: items 2..3 hit");
        let second = spmm_batched_cached(&gpu, &cache, &a, &refs, cfg);
        assert_eq!(second.cache_hits, 3, "second call: every item hits");
        assert_eq!(first.stream_us, second.stream_us, "replay is bit-identical");
    }

    #[test]
    fn dispatched_batch_matches_reference_and_hits_cache() {
        let gpu = Gpu::v100();
        let cache = LaunchCache::new();
        let a = gen::uniform(64, 48, 0.7, 370);
        let bs: Vec<Matrix<f32>> = (0..3).map(|i| Matrix::random(48, 32, 371 + i)).collect();
        let refs: Vec<&Matrix<f32>> = bs.iter().collect();
        let cfg = SpmmConfig::heuristic::<f32>(32);
        let policy = DispatchPolicy::default();
        let first = spmm_batched_dispatch(&gpu, &cache, &a, &refs, cfg, &policy).unwrap();
        assert_eq!(first.outputs.len(), 3);
        assert_eq!(first.degraded(), 0, "clean run serves from Sputnik rung");
        assert!(first.reports.iter().all(|r| r.clean()));
        for (out, b) in first.outputs.iter().zip(&bs) {
            assert!(out.max_abs_diff(&reference::spmm(&a, b)) < 1e-3);
        }
        assert_eq!(first.cache_hits, 2, "items 2..3 replay item 1");
        assert!(first.stream_us <= first.naive_us);
        let second = spmm_batched_dispatch(&gpu, &cache, &a, &refs, cfg, &policy).unwrap();
        assert_eq!(second.cache_hits, 3, "warm window: every item hits");
        assert_eq!(first.stream_us, second.stream_us, "replay is bit-identical");
    }

    /// The point of the dispatched window: a fault plan that would abort
    /// [`spmm_batched`] degrades individual items instead, every item lands
    /// on a rung, and the outputs stay correct.
    #[test]
    fn dispatched_batch_survives_faults_per_item() {
        let gpu = Gpu::v100()
            .with_fault_plan(FaultPlan::fail_first(2, FaultKind::EccError).matching("sputnik"));
        let cache = LaunchCache::new();
        let a = gen::uniform(64, 48, 0.7, 380);
        let bs: Vec<Matrix<f32>> = (0..3).map(|i| Matrix::random(48, 32, 381 + i)).collect();
        let refs: Vec<&Matrix<f32>> = bs.iter().collect();
        let cfg = SpmmConfig::heuristic::<f32>(32);
        let result =
            spmm_batched_dispatch(&gpu, &cache, &a, &refs, cfg, &DispatchPolicy::default())
                .expect("faults degrade, never error");
        assert_eq!(result.outputs.len(), 3);
        assert!(result.degraded() >= 1, "the faulted item must degrade");
        let failed: usize = result.reports.iter().map(|r| r.attempts.len()).sum();
        assert!(failed >= 2, "both scheduled faults surface as attempts");
        assert_eq!(result.cache_hits, 0, "fault plans bypass the cache");
        for (out, b) in result.outputs.iter().zip(&bs) {
            assert!(out.max_abs_diff(&reference::spmm(&a, b)) < 1e-3);
        }
    }

    #[test]
    fn dispatched_sddmm_degrades_to_cpu_under_sustained_faults() {
        let gpu = Gpu::v100().with_fault_plan(FaultPlan::fail_all(FaultKind::EccError));
        let cache = LaunchCache::new();
        let mask = gen::attention_mask(64, 8, 0.9, 390);
        let q = Matrix::<f32>::random(64, 32, 391);
        let k = Matrix::<f32>::random(64, 32, 392);
        let cfg = SddmmConfig::heuristic::<f32>(32);
        let result = sddmm_batched_dispatch(
            &gpu,
            &cache,
            &[(&q, &k)],
            &mask,
            cfg,
            &DispatchPolicy::default(),
        )
        .expect("the CPU rung cannot fault");
        assert_eq!(result.reports[0].served_by, Rung::CpuReference);
        assert_eq!(result.cpu_served(), 1);
        let expect = reference::sddmm(&q, &k, &mask);
        for (a, b) in result.outputs[0].values().iter().zip(expect.values()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn dispatched_sddmm_clean_run_serves_sputnik() {
        let gpu = Gpu::v100();
        let cache = LaunchCache::new();
        let mask = gen::attention_mask(96, 16, 0.9, 393);
        let q1 = Matrix::<f32>::random(96, 32, 394);
        let k1 = Matrix::<f32>::random(96, 32, 395);
        let q2 = Matrix::<f32>::random(96, 32, 396);
        let k2 = Matrix::<f32>::random(96, 32, 397);
        let cfg = SddmmConfig::heuristic::<f32>(32);
        let result = sddmm_batched_dispatch(
            &gpu,
            &cache,
            &[(&q1, &k1), (&q2, &k2)],
            &mask,
            cfg,
            &DispatchPolicy::default(),
        )
        .unwrap();
        assert!(result.reports.iter().all(|r| r.served_by == Rung::Sputnik));
        assert_eq!(result.cache_hits, 1, "pair 2 replays pair 1");
        for (out, (q, k)) in result.outputs.iter().zip([(&q1, &k1), (&q2, &k2)]) {
            let expect = reference::sddmm(q, k, &mask);
            for (a, b) in out.values().iter().zip(expect.values()) {
                assert!((a - b).abs() < 1e-3);
            }
        }
    }

    /// Satellite regression: batched launches under a fault plan bypass the
    /// launch cache silently inside the launcher — the batch loops must
    /// record a per-item trace instant so chaos runs can audit exactly which
    /// items consumed fault-schedule indices.
    #[test]
    fn fault_plan_bypass_leaves_per_item_trace_instants() {
        use gpu_sim::trace;
        let a = gen::uniform(48, 40, 0.6, 400);
        let bs: Vec<Matrix<f32>> = (0..4).map(|i| Matrix::random(40, 16, 401 + i)).collect();
        let refs: Vec<&Matrix<f32>> = bs.iter().collect();
        let mask = gen::attention_mask(48, 8, 0.9, 405);
        let q = Matrix::<f32>::random(48, 16, 406);
        let k = Matrix::<f32>::random(48, 16, 407);
        let gpu = Gpu::v100().with_fault_plan(FaultPlan::none());

        trace::enable();
        spmm_batched(&gpu, &a, &refs, SpmmConfig::heuristic::<f32>(16));
        sddmm_batched(
            &gpu,
            &[(&q, &k), (&q, &k)],
            &mask,
            SddmmConfig::heuristic::<f32>(16),
        );
        let events = trace::disable();

        // The recorder is process-global (other tests may append events
        // concurrently), so assert on the presence of our items rather than
        // exact counts.
        let bypasses: Vec<&str> = events
            .iter()
            .filter(|e| e.cat == "batched")
            .map(|e| e.name.as_str())
            .collect();
        for i in 0..4 {
            let want = format!("fault-plan bypass: spmm item {i} simulated in full");
            assert!(
                bypasses.iter().any(|n| **n == want),
                "missing instant '{want}' in {bypasses:?}"
            );
        }
        for i in 0..2 {
            let want = format!("fault-plan bypass: sddmm item {i} simulated in full");
            assert!(
                bypasses.iter().any(|n| **n == want),
                "missing instant '{want}' in {bypasses:?}"
            );
        }
    }

    /// Fault-plan GPUs must bypass the batch cache (fault schedules consume
    /// per-launch indices): every launch simulates, and scheduled faults
    /// still fire at their exact index.
    #[test]
    fn fault_plan_bypasses_batch_cache() {
        let a = gen::uniform(64, 48, 0.7, 360);
        let bs: Vec<Matrix<f32>> = (0..3).map(|i| Matrix::random(48, 32, 361 + i)).collect();
        let refs: Vec<&Matrix<f32>> = bs.iter().collect();
        let cfg = SpmmConfig::heuristic::<f32>(32);

        // An armed-but-quiet plan: the cache must still be bypassed.
        let gpu = Gpu::v100().with_fault_plan(FaultPlan::none());
        let result = spmm_batched(&gpu, &a, &refs, cfg);
        assert_eq!(result.cache_hits, 0, "no cache service under a fault plan");
        assert_eq!(
            gpu.fault_plan().map(FaultPlan::launches_observed),
            Some(3),
            "every batched launch consults the schedule"
        );

        // A plan that kills the first launch: the batch must panic (the
        // stream uses the panicking launch path), proving launches were not
        // served from a cache that would skip the fault.
        let gpu = Gpu::v100().with_fault_plan(FaultPlan::fail_first(1, FaultKind::EccError));
        let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            spmm_batched(&gpu, &a, &refs, cfg)
        }));
        assert!(killed.is_err(), "scheduled fault must abort the batch");
    }
}
