//! Batched kernel launches.
//!
//! Sparse attention runs the *same* sparse topology against many dense
//! operands — one per (head, batch element) — and sparse training reuses one
//! weight topology across micro-batches. These helpers amortize everything
//! amortizable: the row swizzle is computed once, the launches go through a
//! [`gpu_sim::Stream`] so consecutive kernels overlap their launch overhead
//! (as back-to-back launches do on real hardware), and the stream consults a
//! [`LaunchCache`] — the simulated statistics depend on the topology and
//! configuration, not the dense values, so items 2..k of a batch replay item
//! 1's simulation instead of re-running it. The usual bypass rule applies: a
//! [`Gpu`] carrying a fault plan simulates every launch in full.
//!
//! [`spmm_batched`] / [`sddmm_batched`] memoize within the one call (a
//! private per-batch cache); the `_cached` variants accept a caller-owned
//! cache so repeated batches (layers, training steps) hit across calls too.

use crate::config::{SddmmConfig, SpmmConfig};
use crate::sddmm::{self, SddmmKernel};
use crate::spmm::{self, SpmmKernel};
use gpu_sim::{Gpu, LaunchCache, Stream};
use sparse::{CsrMatrix, Matrix, RowSwizzle, Scalar};

/// Result of a batched launch: per-item outputs plus stream-level timing.
pub struct BatchedResult<T> {
    pub outputs: Vec<T>,
    /// Total simulated time with launch overhead pipelined.
    pub stream_us: f64,
    /// Sum of standalone launch times (what naive sequential launches cost).
    pub naive_us: f64,
    /// Launches whose statistics were replayed from the launch cache.
    pub cache_hits: u64,
}

impl<T> BatchedResult<T> {
    /// How much the stream pipelining saved.
    ///
    /// Invariant: **never negative**. Pipelining can only hide launch
    /// overhead behind execution, so a stream slower than its naive
    /// back-to-back sum is a model violation — the batched constructors
    /// assert it on every batch.
    pub fn overhead_saved_us(&self) -> f64 {
        self.naive_us - self.stream_us
    }
}

/// Check the stream-vs-naive model invariant for a finished batch.
fn assert_stream_invariant(stream_us: f64, naive_us: f64) {
    assert!(
        stream_us <= naive_us + 1e-9,
        "model violation: stream time {stream_us} us exceeds naive sequential {naive_us} us \
         (pipelining can only hide overhead)"
    );
}

/// SpMM of one sparse matrix against many dense operands, memoized within
/// the batch (every item shares `a`'s topology and `cfg`, so items 2..k are
/// cache replays).
pub fn spmm_batched<T: Scalar>(
    gpu: &Gpu,
    a: &CsrMatrix<T>,
    bs: &[&Matrix<T>],
    cfg: SpmmConfig,
) -> BatchedResult<Matrix<T>> {
    let cache = LaunchCache::new();
    spmm_batched_cached(gpu, &cache, a, bs, cfg)
}

/// [`spmm_batched`] through a caller-owned [`LaunchCache`], so repeated
/// batches on the same topology hit across calls.
pub fn spmm_batched_cached<T: Scalar>(
    gpu: &Gpu,
    cache: &LaunchCache,
    a: &CsrMatrix<T>,
    bs: &[&Matrix<T>],
    cfg: SpmmConfig,
) -> BatchedResult<Matrix<T>> {
    let swizzle = if cfg.row_swizzle {
        RowSwizzle::by_length_desc(a)
    } else {
        RowSwizzle::identity(a.rows())
    };
    let mut stream = Stream::with_cache(gpu, cache);
    let mut outputs = Vec::with_capacity(bs.len());
    let mut naive_us = 0.0;
    for b in bs {
        let mut out = Matrix::<T>::zeros(a.rows(), b.cols());
        let fingerprint = spmm::operand_fingerprint(a, b.cols());
        let stats = {
            let kernel = SpmmKernel::new(a, b, &mut out, &swizzle, cfg);
            stream.launch_cached(fingerprint, &kernel)
        };
        naive_us += stats.time_us;
        outputs.push(out);
    }
    let stream_us = stream.total_us();
    assert_stream_invariant(stream_us, naive_us);
    BatchedResult {
        outputs,
        stream_us,
        naive_us,
        cache_hits: stream.cache_hits(),
    }
}

/// SDDMM of one mask against many (lhs, rhs) pairs — the per-head QK^T of
/// sparse attention ("the sparse attention mask ... is shared by all
/// attention heads and layers"). Memoized within the batch like
/// [`spmm_batched`].
pub fn sddmm_batched<T: Scalar>(
    gpu: &Gpu,
    pairs: &[(&Matrix<T>, &Matrix<T>)],
    mask: &CsrMatrix<T>,
    cfg: SddmmConfig,
) -> BatchedResult<CsrMatrix<T>> {
    let cache = LaunchCache::new();
    sddmm_batched_cached(gpu, &cache, pairs, mask, cfg)
}

/// [`sddmm_batched`] through a caller-owned [`LaunchCache`].
pub fn sddmm_batched_cached<T: Scalar>(
    gpu: &Gpu,
    cache: &LaunchCache,
    pairs: &[(&Matrix<T>, &Matrix<T>)],
    mask: &CsrMatrix<T>,
    cfg: SddmmConfig,
) -> BatchedResult<CsrMatrix<T>> {
    let swizzle = if cfg.row_swizzle {
        RowSwizzle::by_length_desc(mask)
    } else {
        RowSwizzle::identity(mask.rows())
    };
    let mut stream = Stream::with_cache(gpu, cache);
    let mut outputs = Vec::with_capacity(pairs.len());
    let mut naive_us = 0.0;
    for (lhs, rhs) in pairs {
        let mut values = vec![T::zero(); mask.nnz()];
        let fingerprint = sddmm::mask_fingerprint(mask, lhs.cols());
        let stats = {
            let kernel = SddmmKernel::new(lhs, rhs, mask, &mut values, &swizzle, cfg);
            stream.launch_cached(fingerprint, &kernel)
        };
        naive_us += stats.time_us;
        outputs.push(mask.with_values(values));
    }
    let stream_us = stream.total_us();
    assert_stream_invariant(stream_us, naive_us);
    BatchedResult {
        outputs,
        stream_us,
        naive_us,
        cache_hits: stream.cache_hits(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gpu_sim::{FaultKind, FaultPlan};
    use sparse::gen;

    #[test]
    fn batched_spmm_matches_individual_launches() {
        let gpu = Gpu::v100();
        let a = gen::uniform(64, 48, 0.7, 321);
        let b1 = Matrix::<f32>::random(48, 32, 322);
        let b2 = Matrix::<f32>::random(48, 32, 323);
        let cfg = SpmmConfig::heuristic::<f32>(32);
        let result = spmm_batched(&gpu, &a, &[&b1, &b2], cfg);
        assert_eq!(result.outputs.len(), 2);
        assert!(result.outputs[0].max_abs_diff(&reference::spmm(&a, &b1)) < 1e-3);
        assert!(result.outputs[1].max_abs_diff(&reference::spmm(&a, &b2)) < 1e-3);
        assert_eq!(
            result.cache_hits, 1,
            "second item replays the first's simulation"
        );
    }

    #[test]
    fn stream_saves_launch_overhead() {
        let gpu = Gpu::v100();
        let a = gen::uniform(128, 128, 0.8, 324);
        let bs: Vec<Matrix<f32>> = (0..8).map(|i| Matrix::random(128, 64, 325 + i)).collect();
        let refs: Vec<&Matrix<f32>> = bs.iter().collect();
        let result = spmm_batched(&gpu, &a, &refs, SpmmConfig::heuristic::<f32>(64));
        assert!(
            result.stream_us < result.naive_us,
            "pipelining must save time"
        );
        assert!(result.overhead_saved_us() > 0.0);
        assert_eq!(result.cache_hits, 7, "items 2..8 hit the batch cache");
    }

    /// Regression (`overhead_saved_us` < 0): a single tiny kernel used to
    /// pay the short-kernel gap penalty with no successor to pipeline, so a
    /// one-item "batch" came out slower than its naive launch. The saved
    /// overhead must be non-negative for every batch size.
    #[test]
    fn overhead_saved_is_never_negative() {
        let gpu = Gpu::v100();
        // Tiny problem: execution well under the launch overhead.
        let a = gen::uniform(4, 4, 0.5, 331);
        let bs: Vec<Matrix<f32>> = (0..8).map(|i| Matrix::random(4, 4, 332 + i)).collect();
        let cfg = SpmmConfig::heuristic::<f32>(4);
        for k in 1..=bs.len() {
            let refs: Vec<&Matrix<f32>> = bs[..k].iter().collect();
            let result = spmm_batched(&gpu, &a, &refs, cfg);
            assert!(
                result.overhead_saved_us() >= 0.0,
                "batch of {k}: saved {} us is negative (stream {} vs naive {})",
                result.overhead_saved_us(),
                result.stream_us,
                result.naive_us
            );
        }
    }

    #[test]
    fn batched_sddmm_shares_the_mask() {
        let gpu = Gpu::v100();
        let mask = gen::attention_mask(96, 16, 0.9, 326);
        let q1 = Matrix::<f32>::random(96, 32, 327);
        let k1 = Matrix::<f32>::random(96, 32, 328);
        let q2 = Matrix::<f32>::random(96, 32, 329);
        let k2 = Matrix::<f32>::random(96, 32, 330);
        let result = sddmm_batched(
            &gpu,
            &[(&q1, &k1), (&q2, &k2)],
            &mask,
            SddmmConfig::heuristic::<f32>(32),
        );
        for (out, (q, k)) in result.outputs.iter().zip([(&q1, &k1), (&q2, &k2)]) {
            let expect = reference::sddmm(q, k, &mask);
            assert!(out.same_pattern(&expect));
            for (a, b) in out.values().iter().zip(expect.values()) {
                assert!((a - b).abs() < 1e-3);
            }
        }
        assert_eq!(result.cache_hits, 1, "pair 2 replays pair 1's simulation");
    }

    /// The cache replays *statistics*, never values: every item's functional
    /// output must match its own reference even when served from the cache.
    #[test]
    fn cache_hits_do_not_cross_contaminate_outputs() {
        let gpu = Gpu::v100();
        let a = gen::uniform(48, 40, 0.6, 340);
        let bs: Vec<Matrix<f32>> = (0..4).map(|i| Matrix::random(40, 16, 341 + i)).collect();
        let refs: Vec<&Matrix<f32>> = bs.iter().collect();
        let result = spmm_batched(&gpu, &a, &refs, SpmmConfig::heuristic::<f32>(16));
        assert_eq!(result.cache_hits, 3);
        for (out, b) in result.outputs.iter().zip(&bs) {
            assert!(out.max_abs_diff(&reference::spmm(&a, b)) < 1e-3);
        }
    }

    #[test]
    fn shared_cache_hits_across_batched_calls() {
        let gpu = Gpu::v100();
        let cache = LaunchCache::new();
        let a = gen::uniform(64, 48, 0.7, 350);
        let bs: Vec<Matrix<f32>> = (0..3).map(|i| Matrix::random(48, 32, 351 + i)).collect();
        let refs: Vec<&Matrix<f32>> = bs.iter().collect();
        let cfg = SpmmConfig::heuristic::<f32>(32);
        let first = spmm_batched_cached(&gpu, &cache, &a, &refs, cfg);
        assert_eq!(first.cache_hits, 2, "first call: items 2..3 hit");
        let second = spmm_batched_cached(&gpu, &cache, &a, &refs, cfg);
        assert_eq!(second.cache_hits, 3, "second call: every item hits");
        assert_eq!(first.stream_us, second.stream_us, "replay is bit-identical");
    }

    /// Fault-plan GPUs must bypass the batch cache (fault schedules consume
    /// per-launch indices): every launch simulates, and scheduled faults
    /// still fire at their exact index.
    #[test]
    fn fault_plan_bypasses_batch_cache() {
        let a = gen::uniform(64, 48, 0.7, 360);
        let bs: Vec<Matrix<f32>> = (0..3).map(|i| Matrix::random(48, 32, 361 + i)).collect();
        let refs: Vec<&Matrix<f32>> = bs.iter().collect();
        let cfg = SpmmConfig::heuristic::<f32>(32);

        // An armed-but-quiet plan: the cache must still be bypassed.
        let gpu = Gpu::v100().with_fault_plan(FaultPlan::none());
        let result = spmm_batched(&gpu, &a, &refs, cfg);
        assert_eq!(result.cache_hits, 0, "no cache service under a fault plan");
        assert_eq!(
            gpu.fault_plan().map(FaultPlan::launches_observed),
            Some(3),
            "every batched launch consults the schedule"
        );

        // A plan that kills the first launch: the batch must panic (the
        // stream uses the panicking launch path), proving launches were not
        // served from a cache that would skip the fault.
        let gpu = Gpu::v100().with_fault_plan(FaultPlan::fail_first(1, FaultKind::EccError));
        let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            spmm_batched(&gpu, &a, &refs, cfg)
        }));
        assert!(killed.is_err(), "scheduled fault must abort the batch");
    }
}
