//! Batched kernel launches.
//!
//! Sparse attention runs the *same* sparse topology against many dense
//! operands — one per (head, batch element) — and sparse training reuses one
//! weight topology across micro-batches. These helpers amortize everything
//! amortizable: the row swizzle is computed once, and the launches go
//! through a [`gpu_sim::Stream`] so consecutive kernels overlap their launch
//! overhead, as back-to-back launches do on real hardware.

use crate::config::{SddmmConfig, SpmmConfig};
use crate::sddmm::SddmmKernel;
use crate::spmm::SpmmKernel;
use gpu_sim::{Gpu, Stream};
use sparse::{CsrMatrix, Matrix, RowSwizzle, Scalar};

/// Result of a batched launch: per-item outputs plus stream-level timing.
pub struct BatchedResult<T> {
    pub outputs: Vec<T>,
    /// Total simulated time with launch overhead pipelined.
    pub stream_us: f64,
    /// Sum of standalone launch times (what naive sequential launches cost).
    pub naive_us: f64,
}

impl<T> BatchedResult<T> {
    /// How much the stream pipelining saved.
    pub fn overhead_saved_us(&self) -> f64 {
        self.naive_us - self.stream_us
    }
}

/// SpMM of one sparse matrix against many dense operands.
pub fn spmm_batched<T: Scalar>(
    gpu: &Gpu,
    a: &CsrMatrix<T>,
    bs: &[&Matrix<T>],
    cfg: SpmmConfig,
) -> BatchedResult<Matrix<T>> {
    let swizzle = if cfg.row_swizzle {
        RowSwizzle::by_length_desc(a)
    } else {
        RowSwizzle::identity(a.rows())
    };
    let mut stream = Stream::new(gpu);
    let mut outputs = Vec::with_capacity(bs.len());
    let mut naive_us = 0.0;
    for b in bs {
        let mut out = Matrix::<T>::zeros(a.rows(), b.cols());
        let stats = {
            let kernel = SpmmKernel::new(a, b, &mut out, &swizzle, cfg);
            stream.launch(&kernel)
        };
        naive_us += stats.time_us;
        outputs.push(out);
    }
    BatchedResult {
        outputs,
        stream_us: stream.total_us(),
        naive_us,
    }
}

/// SDDMM of one mask against many (lhs, rhs) pairs — the per-head QK^T of
/// sparse attention ("the sparse attention mask ... is shared by all
/// attention heads and layers").
pub fn sddmm_batched<T: Scalar>(
    gpu: &Gpu,
    pairs: &[(&Matrix<T>, &Matrix<T>)],
    mask: &CsrMatrix<T>,
    cfg: SddmmConfig,
) -> BatchedResult<CsrMatrix<T>> {
    let swizzle = if cfg.row_swizzle {
        RowSwizzle::by_length_desc(mask)
    } else {
        RowSwizzle::identity(mask.rows())
    };
    let mut stream = Stream::new(gpu);
    let mut outputs = Vec::with_capacity(pairs.len());
    let mut naive_us = 0.0;
    for (lhs, rhs) in pairs {
        let mut values = vec![T::zero(); mask.nnz()];
        let stats = {
            let kernel = SddmmKernel::new(lhs, rhs, mask, &mut values, &swizzle, cfg);
            stream.launch(&kernel)
        };
        naive_us += stats.time_us;
        outputs.push(mask.with_values(values));
    }
    BatchedResult {
        outputs,
        stream_us: stream.total_us(),
        naive_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sparse::gen;

    #[test]
    fn batched_spmm_matches_individual_launches() {
        let gpu = Gpu::v100();
        let a = gen::uniform(64, 48, 0.7, 321);
        let b1 = Matrix::<f32>::random(48, 32, 322);
        let b2 = Matrix::<f32>::random(48, 32, 323);
        let cfg = SpmmConfig::heuristic::<f32>(32);
        let result = spmm_batched(&gpu, &a, &[&b1, &b2], cfg);
        assert_eq!(result.outputs.len(), 2);
        assert!(result.outputs[0].max_abs_diff(&reference::spmm(&a, &b1)) < 1e-3);
        assert!(result.outputs[1].max_abs_diff(&reference::spmm(&a, &b2)) < 1e-3);
    }

    #[test]
    fn stream_saves_launch_overhead() {
        let gpu = Gpu::v100();
        let a = gen::uniform(128, 128, 0.8, 324);
        let bs: Vec<Matrix<f32>> = (0..8).map(|i| Matrix::random(128, 64, 325 + i)).collect();
        let refs: Vec<&Matrix<f32>> = bs.iter().collect();
        let result = spmm_batched(&gpu, &a, &refs, SpmmConfig::heuristic::<f32>(64));
        assert!(
            result.stream_us < result.naive_us,
            "pipelining must save time"
        );
        assert!(result.overhead_saved_us() > 0.0);
    }

    #[test]
    fn batched_sddmm_shares_the_mask() {
        let gpu = Gpu::v100();
        let mask = gen::attention_mask(96, 16, 0.9, 326);
        let q1 = Matrix::<f32>::random(96, 32, 327);
        let k1 = Matrix::<f32>::random(96, 32, 328);
        let q2 = Matrix::<f32>::random(96, 32, 329);
        let k2 = Matrix::<f32>::random(96, 32, 330);
        let result = sddmm_batched(
            &gpu,
            &[(&q1, &k1), (&q2, &k2)],
            &mask,
            SddmmConfig::heuristic::<f32>(32),
        );
        for (out, (q, k)) in result.outputs.iter().zip([(&q1, &k1), (&q2, &k2)]) {
            let expect = reference::sddmm(q, k, &mask);
            assert!(out.same_pattern(&expect));
            for (a, b) in out.values().iter().zip(expect.values()) {
                assert!((a - b).abs() < 1e-3);
            }
        }
    }
}
