//! The Sputnik SpMM kernel (Sections V-A through V-D of the paper).
//!
//! Computes `A (sparse, m x k) * B (dense row-major, k x n) => C (m x n)`
//! with hierarchical 1-D tiling: each thread block owns `block_items_y` rows
//! of a `block_items_x`-column strip of the output; each row is processed by
//! an independent *subwarp* of `block_items_x / vector_width` threads. The
//! main loop consumes `block_items_k` nonzeros per iteration, staging the
//! sparse values and indices in shared memory (Figure 8's pseudo-code).
//!
//! The kernel executes *functionally* (producing real output values through
//! the same ROMA-masked, residue-padded control flow the CUDA kernel uses)
//! while recording a warp-level cost trace. Subwarps that share a warp
//! execute in lockstep for as many strips as the *longest* row among them
//! needs — the warp-divergence cost of unbalanced rows that the row swizzle's
//! bundling removes.

use crate::config::SpmmConfig;
use crate::error::SputnikError;
use crate::roma::{MemoryAligner, ROMA_MASK_INSTRS, ROMA_PRELUDE_INSTRS};
use gpu_sim::{
    AccessBound, AccessPattern, AlignmentFacts, BarrierFacts, BlockContext, BufferBound, BufferId,
    BufferSpec, Dim3, Fingerprint, Gpu, Kernel, LaunchCache, LaunchKey, LaunchStats, SmemScope,
    StageBound, StaticFacts, SyncUnsafeSlice, VectorClass,
};
use sparse::{CsrMatrix, Matrix, RowSwizzle, Scalar};

/// Validate shapes/config shared by the functional and profile constructors
/// (and by the joint-sparsity kernel, which layers its own LUT checks on
/// top — see [`crate::joint`]).
pub(crate) fn validate_spmm<T: Scalar>(
    a: &CsrMatrix<T>,
    swizzle: &RowSwizzle,
    cfg: &SpmmConfig,
) -> Result<(), SputnikError> {
    cfg.validate(a.cols())
        .map_err(|reason| SputnikError::IllegalConfig { reason })?;
    if cfg.threads_x() > 32 {
        return Err(SputnikError::IllegalConfig {
            reason: format!(
                "a subwarp cannot span more than one warp: block_items_x {} / vector_width {} = {} threads",
                cfg.block_items_x,
                cfg.vector_width,
                cfg.threads_x()
            ),
        });
    }
    if swizzle.len() != a.rows() {
        return Err(SputnikError::ShapeMismatch {
            expected: format!("swizzle over {} rows", a.rows()),
            found: format!("{} entries", swizzle.len()),
            context: "spmm row swizzle",
        });
    }
    Ok(())
}

/// Reject operands containing NaN/Inf: results would be meaningless and the
/// dispatch layer's output-corruption guards could not distinguish poisoned
/// outputs from honest ones.
pub(crate) fn require_finite<T: Scalar>(
    operand: &'static str,
    values: &[T],
) -> Result<(), SputnikError> {
    for (index, v) in values.iter().enumerate() {
        if !v.to_f32().is_finite() {
            return Err(SputnikError::NonFiniteOperand { operand, index });
        }
    }
    Ok(())
}

/// Buffer identities for the cache model.
pub const BUF_A_VALUES: BufferId = BufferId(0);
pub const BUF_A_INDICES: BufferId = BufferId(1);
pub const BUF_A_OFFSETS: BufferId = BufferId(2);
pub const BUF_B: BufferId = BufferId(3);
pub const BUF_C: BufferId = BufferId(4);
pub const BUF_SWIZZLE: BufferId = BufferId(5);
pub const BUF_BIAS: BufferId = BufferId(6);

/// The simulated SpMM kernel. Construct via [`SpmmKernel::new`] (functional)
/// or [`SpmmKernel::for_profile`] (cost model only — no dense allocations),
/// launch via [`gpu_sim::Gpu::launch`], or use the [`spmm`] wrapper.
pub struct SpmmKernel<'a, T: Scalar> {
    a: &'a CsrMatrix<T>,
    /// Dense operand data; absent in profile-only kernels.
    b: Option<&'a Matrix<T>>,
    out: Option<SyncUnsafeSlice<'a, T>>,
    swizzle: &'a RowSwizzle,
    bias: Option<&'a [f32]>,
    cfg: SpmmConfig,
    n: usize,
    /// Accumulate into the existing output (`C += A·B`) instead of
    /// overwriting it. See [`SpmmKernel::with_accumulate`].
    accumulate: bool,
}

/// Per-subwarp state computed in the prelude. Shared with the joint-sparsity
/// kernel ([`crate::joint`]), which resolves subwarps identically.
#[derive(Clone, Copy)]
pub(crate) struct SubwarpWork {
    /// Output row this subwarp produces, or `usize::MAX` when out of range.
    pub(crate) row: usize,
    /// True row length.
    pub(crate) nnz: usize,
    /// ROMA-aligned start.
    pub(crate) aligned_offset: usize,
    /// Masked prefix length.
    pub(crate) prefix: usize,
    /// Values to process including the prefix.
    pub(crate) total: usize,
}

/// Upper bound on subwarps per block (`block_items_y <= 32`, enforced by
/// [`SpmmConfig::validate`]). Lets the prelude resolve descriptors into a
/// stack buffer instead of a per-block heap allocation.
pub(crate) const MAX_BLOCK_SUBWARPS: usize = 32;

impl SubwarpWork {
    /// Placeholder for unresolved stack-buffer slots.
    pub(crate) const EMPTY: SubwarpWork = SubwarpWork {
        row: usize::MAX,
        nnz: 0,
        aligned_offset: 0,
        prefix: 0,
        total: 0,
    };
}

/// Collect `row * scale` for every in-range subwarp into a stack buffer;
/// returns the count. Shared by the offset/bias gathers and the signature.
pub(crate) fn gather_row_addrs(
    subs: &[SubwarpWork],
    scale: u64,
    out: &mut [u64; MAX_BLOCK_SUBWARPS],
) -> usize {
    let mut n = 0;
    for s in subs {
        if s.row != usize::MAX {
            out[n] = s.row as u64 * scale;
            n += 1;
        }
    }
    n
}

/// Effective vector width for loads from the sparse matrix (see
/// [`SpmmKernel`]'s `vw_a`); shared with [`crate::joint`].
pub(crate) fn effective_vw_a(cfg: &SpmmConfig) -> u32 {
    if cfg.roma || cfg.assume_aligned || cfg.vector_width == 1 {
        cfg.vector_width
    } else {
        1
    }
}

/// Sectors touched by one subwarp's load of a `tile_w`-element strip of a
/// dense row-major `k x n` operand at column offset `n_off`; shared with
/// [`crate::joint`].
pub(crate) fn dense_strip_sectors(elem_bytes: u32, n: usize, n_off: usize, tile_w: usize) -> u64 {
    let eb = elem_bytes as u64;
    let row_bytes = n as u64 * eb;
    let off_bytes = n_off as u64 * eb;
    if row_bytes.is_multiple_of(32) && off_bytes.is_multiple_of(32) {
        gpu_sim::memory::sectors_contiguous(0, tile_w as u64 * eb)
    } else {
        gpu_sim::memory::sectors_contiguous(eb, tile_w as u64 * eb)
    }
}

/// Resolve one subwarp's work descriptor: swizzled row id, true length, and
/// the ROMA / assume-aligned start adjustment. The dense-activation
/// [`SpmmKernel`] and the joint-sparsity kernel ([`crate::joint`]) resolve
/// subwarps through this one function, so their per-element iteration spaces
/// are identical by construction — the foundation of the joint kernel's
/// bit-identity claim.
pub(crate) fn resolve_subwarp<T: Scalar>(
    a: &CsrMatrix<T>,
    swizzle: &RowSwizzle,
    cfg: &SpmmConfig,
    m_idx: usize,
) -> SubwarpWork {
    if m_idx >= a.rows() {
        return SubwarpWork {
            row: usize::MAX,
            nnz: 0,
            aligned_offset: 0,
            prefix: 0,
            total: 0,
        };
    }
    let row = if cfg.row_swizzle {
        swizzle.row(m_idx)
    } else {
        m_idx
    };
    let offset = a.row_offsets()[row] as usize;
    let nnz = a.row_len(row);
    let (aligned_offset, prefix, total) = if cfg.assume_aligned {
        debug_assert_eq!(
            offset % cfg.vector_width as usize,
            0,
            "assume_aligned requires padded rows (CsrMatrix::padded_to_multiple)"
        );
        (offset, 0, nnz)
    } else if cfg.roma && cfg.vector_width > 1 {
        let al = MemoryAligner::new(offset, nnz, cfg.vector_width);
        (al.aligned_offset(), al.prefix(), al.aligned_nonzeros())
    } else {
        (offset, 0, nnz)
    };
    SubwarpWork {
        row,
        nnz,
        aligned_offset,
        prefix,
        total,
    }
}

impl<'a, T: Scalar> SpmmKernel<'a, T> {
    pub fn new(
        a: &'a CsrMatrix<T>,
        b: &'a Matrix<T>,
        out: &'a mut Matrix<T>,
        swizzle: &'a RowSwizzle,
        cfg: SpmmConfig,
    ) -> Self {
        Self::try_new(a, b, out, swizzle, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: every shape/config violation becomes a
    /// [`SputnikError`] instead of a panic.
    pub fn try_new(
        a: &'a CsrMatrix<T>,
        b: &'a Matrix<T>,
        out: &'a mut Matrix<T>,
        swizzle: &'a RowSwizzle,
        cfg: SpmmConfig,
    ) -> Result<Self, SputnikError> {
        if a.cols() != b.rows() {
            return Err(SputnikError::ShapeMismatch {
                expected: format!("B with {} rows", a.cols()),
                found: format!("{}x{}", b.rows(), b.cols()),
                context: "spmm inner dimension",
            });
        }
        if out.rows() != a.rows() || out.cols() != b.cols() {
            return Err(SputnikError::ShapeMismatch {
                expected: format!("{}x{}", a.rows(), b.cols()),
                found: format!("{}x{}", out.rows(), out.cols()),
                context: "spmm output",
            });
        }
        if b.layout() != sparse::Layout::RowMajor {
            return Err(SputnikError::IllegalConfig {
                reason: "Sputnik uses row-major dense operands".into(),
            });
        }
        validate_spmm(a, swizzle, &cfg)?;
        let n = b.cols();
        let out = SyncUnsafeSlice::new(out.as_mut_slice());
        Ok(Self {
            a,
            b: Some(b),
            out: Some(out),
            swizzle,
            bias: None,
            cfg,
            n,
            accumulate: false,
        })
    }

    /// A cost-model-only kernel: no dense operands are materialized, so it
    /// can profile problems whose B/C matrices would not fit host memory
    /// (the corpus sweeps). Launch it with [`gpu_sim::Gpu::profile`].
    pub fn for_profile(
        a: &'a CsrMatrix<T>,
        n: usize,
        swizzle: &'a RowSwizzle,
        cfg: SpmmConfig,
    ) -> Self {
        validate_spmm(a, swizzle, &cfg).unwrap_or_else(|e| panic!("{e}"));
        Self {
            a,
            b: None,
            out: None,
            swizzle,
            bias: None,
            cfg,
            n,
            accumulate: false,
        }
    }

    /// Accumulate into the existing output instead of overwriting it:
    /// `C += A·B`, with each row's accumulation chain *continuing* from the
    /// values already in `C`. The K-split tensor-parallel path
    /// ([`crate::shard`]) runs one accumulating launch per contiguous
    /// K-chunk in rank order; because a validated CSR keeps every row's
    /// entries column-sorted, those chunk folds compose into exactly the
    /// fma chain the single-device kernel executes — bit identity, not
    /// approximate equality. Incompatible with the fused bias+ReLU
    /// epilogue, which is not linear in the partial sums.
    pub fn with_accumulate(mut self) -> Self {
        assert!(
            !self.cfg.fused_bias_relu,
            "accumulate cannot compose with fused_bias_relu"
        );
        self.accumulate = true;
        self
    }

    /// Attach a fused bias + ReLU epilogue (`cfg.fused_bias_relu` must be set).
    pub fn with_bias_relu(mut self, bias: &'a [f32]) -> Self {
        assert!(
            self.cfg.fused_bias_relu,
            "config must enable fused_bias_relu"
        );
        assert_eq!(bias.len(), self.a.rows());
        self.bias = Some(bias);
        self
    }

    /// Effective vector width for loads from the sparse matrix: without ROMA
    /// the row start has no alignment guarantee, so vector loads are illegal
    /// and the kernel falls back to scalar accesses (the padding alternative
    /// the paper rejects as "limiting the generality of the kernel").
    fn vw_a(&self) -> u32 {
        effective_vw_a(&self.cfg)
    }

    /// Sectors touched by one subwarp's load of a `tile_w`-element strip of a
    /// B row at column offset `n_off`. When the row stride and tile offset
    /// are sector-aligned this is the same for every row of B; otherwise the
    /// strip straddles one extra sector (the representative misaligned case).
    fn b_load_sectors(&self, n_off: usize, tile_w: usize) -> u64 {
        dense_strip_sectors(T::BYTES, self.n, n_off, tile_w)
    }

    /// Prepare one subwarp's work descriptor.
    fn subwarp_work(&self, m_idx: usize) -> SubwarpWork {
        resolve_subwarp(self.a, self.swizzle, &self.cfg, m_idx)
    }

    /// Functional computation for one subwarp: the real numerics, walked
    /// through the kernel's actual control flow (aligned start, masked
    /// prefix, zero-padded residue).
    fn compute_subwarp(&self, sub: &SubwarpWork, n_off: usize, tile_w: usize) {
        // The accumulator tile models the subwarp's register/shared staging:
        // arena-pooled (zero heap traffic once warm) and lane-vectorized.
        let mut acc = gpu_sim::arena::ScratchF32::take(tile_w);
        let values = self.a.values();
        let indices = self.a.col_indices();
        // Both operands are always present on the functional path (the only
        // caller); a cost-model-only kernel never reaches this method.
        let (Some(b), Some(out)) = (self.b, self.out.as_ref()) else {
            return;
        };
        let b = b.as_slice();
        if self.accumulate {
            // Seed the accumulator tile with the output's current values so
            // the fma chain continues where the previous K-chunk stopped.
            for (x, slot) in acc.iter_mut().enumerate() {
                *slot = unsafe { out.read(sub.row * self.n + n_off + x) }.to_f32();
            }
        }
        for j in 0..sub.total {
            let pos = sub.aligned_offset + j;
            // ROMA masking: the prefix belongs to the previous row.
            let (val, col) = if j < sub.prefix {
                (0.0f32, 0usize)
            } else {
                (values[pos].to_f32(), indices[pos] as usize)
            };
            if val == 0.0 {
                continue;
            }
            let brow = &b[col * self.n + n_off..col * self.n + n_off + tile_w];
            gpu_sim::lanes::fma_axpy(&mut acc, val, brow, |bv| bv.to_f32());
        }
        let bias = self.bias.map(|bias| bias[sub.row]).unwrap_or(0.0);
        for (x, &v) in acc.iter().enumerate() {
            let v = if self.cfg.fused_bias_relu {
                (v + bias).max(0.0)
            } else {
                v
            };
            // Disjointness: each (row, column-tile) pair is owned by exactly
            // one subwarp of one block.
            unsafe { out.write(sub.row * self.n + n_off + x, T::from_f32(v)) };
        }
    }

    /// Cost of one warp's execution over its subwarps.
    #[allow(clippy::too_many_arguments)]
    fn cost_warp(&self, ctx: &mut BlockContext, subs: &[SubwarpWork], n_off: usize, tile_w: usize) {
        let cfg = &self.cfg;
        let bik = cfg.block_items_k as usize;
        let threads_x = cfg.threads_x();
        let vw = cfg.vector_width;
        let vw_a = self.vw_a();
        let eb = T::BYTES;
        let ib = cfg.index_width.bytes();
        let lanes = (threads_x * subs.len() as u32).min(32);

        // ---- Prelude (per warp) -------------------------------------------
        // Tile index math: ~6 integer ops.
        ctx.misc(6);
        if cfg.row_swizzle {
            // One gather of the swizzled row indices (consecutive m_idx, so
            // the access is contiguous). Tail subwarps past the last row
            // never issue the load, so the lane count is clamped by the
            // matrix height — matters only when rows < block_items_y.
            let live = subs.len().min(self.a.rows()) as u32;
            if live > 0 {
                ctx.ld_global(BUF_SWIZZLE, 0, live, 1, 4);
            }
        }
        // Row offset + next offset per subwarp: scattered pair loads. The
        // address list is bounded by the subwarp cap, so it lives on the
        // stack — no heap traffic on the cost path either.
        let mut offset_addrs = [0u64; MAX_BLOCK_SUBWARPS];
        let n_offset_addrs = gather_row_addrs(subs, 4, &mut offset_addrs);
        if n_offset_addrs > 0 {
            ctx.ld_global_gather(BUF_A_OFFSETS, &offset_addrs[..n_offset_addrs], 8);
        }
        ctx.misc(2); // nnz computation
        if cfg.roma && vw > 1 {
            ctx.misc(ROMA_PRELUDE_INSTRS);
        }

        // ---- Warp divergence stall ----------------------------------------
        // Subwarps sharing a warp execute in lockstep for as many strips as
        // the *longest* row among them needs; lanes of shorter rows sit idle.
        // Beyond the issued-instruction waste (counted below via max-trips),
        // the idle subwarps stop contributing memory-level parallelism, so a
        // memory-bound kernel sees exposed latency proportional to the idle
        // slots. Calibrated against Figure 7's anchor points (standard
        // ordering degrades to ~50% of balanced throughput at the feasible
        // CoV maximum; row swizzle retains >95%).
        const DIVERGENCE_STALL_CYCLES_PER_SLOT: u64 = 14;
        let max_total = subs.iter().map(|s| s.total).max().unwrap_or(0);
        if subs.len() > 1 {
            let wasted: u64 = subs
                .iter()
                .filter(|s| s.row != usize::MAX)
                .map(|s| (max_total - s.total) as u64)
                .sum();
            ctx.cost.stall_cycles += wasted * DIVERGENCE_STALL_CYCLES_PER_SLOT / subs.len() as u64;
        }

        // ---- Main loop ----------------------------------------------------
        if max_total > 0 {
            let full_iters = (max_total / bik) as u64;
            let residue = max_total % bik;

            // Instruction cost of one full strip, per warp.
            let a_load_instrs = gpu_sim::memory::vector_instr_count(bik as u64, threads_x, vw_a);
            let smem_broadcast_loads = if cfg.residue_unroll {
                // 128-bit shared loads: 4 values (+ their indices) per access.
                2 * (bik as u64).div_ceil(4)
            } else {
                2 * (bik as u64).div_ceil(4)
            };
            let full_strip_instrs = |ctx: &mut BlockContext| {
                // Stage A values + indices to shared memory.
                for _ in 0..a_load_instrs {
                    // Sector counts are added per-subwarp below; these calls
                    // only count the instruction + a placeholder address.
                    // Warp scope: Sputnik's staging is warp-synchronous (the
                    // warp that stores the strip is its only consumer).
                    ctx.cost.ld_global_instrs += 2; // values + indices
                    ctx.smem_store(2, 0, SmemScope::Warp);
                }
                ctx.cost.shared_bytes += bik as u64 * (eb + ib) as u64;
                if cfg.index_prescale {
                    ctx.misc((bik as u64).div_ceil(threads_x as u64));
                }
                // Inner loop over the strip's nonzeros.
                for _ in 0..1 {
                    // Broadcast loads of values and indices from shared memory.
                    for _ in 0..smem_broadcast_loads {
                        ctx.ld_shared(1, 4, eb.max(ib), 1);
                    }
                    // One B-row strip load per nonzero (all subwarps issue in
                    // the same warp instruction).
                    ctx.cost.ld_global_instrs += bik as u64;
                    if !cfg.index_prescale {
                        ctx.misc(bik as u64); // scale index at every use
                    }
                    // vector_width FMAs per thread per nonzero.
                    ctx.cost.fma_instrs += bik as u64 * vw as u64;
                    ctx.misc(4); // loop bookkeeping
                }
            };

            for it in 0..full_iters {
                full_strip_instrs(ctx);
                if it == 0 && cfg.roma && vw > 1 {
                    // Mask the prefix: 1 setp + 2 st.shared.
                    ctx.misc(1);
                    ctx.smem_store(2, 0, SmemScope::Warp);
                    let _ = ROMA_MASK_INSTRS;
                }
            }

            // ---- Residue strip -------------------------------------------
            if residue > 0 {
                if cfg.residue_unroll {
                    // Zero the shared buffers, then run the unrolled path
                    // without bounds checks (Section V-D2).
                    ctx.smem_store(2, 0, SmemScope::Warp);
                    let rounded = residue.div_ceil(4) * 4;
                    let a_instrs =
                        gpu_sim::memory::vector_instr_count(residue as u64, threads_x, vw_a);
                    ctx.cost.ld_global_instrs += 2 * a_instrs;
                    ctx.smem_store(2 * a_instrs, 0, SmemScope::Warp);
                    ctx.cost.shared_bytes += residue as u64 * (eb + ib) as u64;
                    for _ in 0..(2 * (rounded as u64).div_ceil(4)) {
                        ctx.ld_shared(1, 4, eb.max(ib), 1);
                    }
                    ctx.cost.ld_global_instrs += rounded as u64; // B loads incl. padding
                    ctx.cost.fma_instrs += rounded as u64 * vw as u64;
                    if cfg.index_prescale {
                        ctx.misc((residue as u64).div_ceil(threads_x as u64));
                    } else {
                        ctx.misc(rounded as u64);
                    }
                    ctx.misc(4);
                } else {
                    // Scalar loop with a bounds check per nonzero: a
                    // predicated branch, scalar shared loads, and the
                    // data-dependent trip count defeating unrolling (no
                    // static offsets, no dual-issue) — the inefficiency
                    // Section V-D2's loop splitting removes.
                    let a_instrs =
                        gpu_sim::memory::vector_instr_count(residue as u64, threads_x, 1);
                    ctx.cost.ld_global_instrs += 2 * a_instrs;
                    ctx.smem_store(2 * a_instrs, 0, SmemScope::Warp);
                    ctx.cost.shared_bytes += residue as u64 * (eb + ib) as u64;
                    for _ in 0..(2 * residue as u64) {
                        ctx.ld_shared(1, 1, eb.max(ib), 1);
                    }
                    ctx.cost.ld_global_instrs += residue as u64;
                    ctx.cost.fma_instrs += residue as u64 * vw as u64;
                    ctx.misc(5 * residue as u64);
                    ctx.cost.stall_cycles += 4 * residue as u64;
                }
            }
        }

        // ---- Per-subwarp memory traffic ----------------------------------
        let b_sectors_per_load = self.b_load_sectors(n_off, tile_w);
        for sub in subs {
            if sub.row == usize::MAX || sub.total == 0 {
                continue;
            }
            // A values + indices: contiguous from the aligned offset.
            ctx.ld_global_trace(
                BUF_A_VALUES,
                sub.aligned_offset as u64 * eb as u64,
                sub.total as u64 * eb as u64,
            );
            ctx.ld_global_trace(
                BUF_A_INDICES,
                sub.aligned_offset as u64 * ib as u64,
                sub.total as u64 * ib as u64,
            );
            // B strips: one per processed value (residue padding loads row 0,
            // which is still a real memory access).
            // The unrolled residue path issues padded loads of B row 0, but
            // every padding access hits the same cached row; only true
            // nonzeros generate memory traffic either way.
            let loads = sub.total as u64;
            ctx.cost.gmem[BUF_B.0 as usize].ld_sectors += loads * b_sectors_per_load;
            // Useful FLOPs: true nonzeros only.
            ctx.cost.flops += 2 * sub.nnz as u64 * tile_w as u64;
        }

        // ---- Output store -------------------------------------------------
        let store_vw = if self.n.is_multiple_of(vw as usize)
            && n_off.is_multiple_of(vw as usize)
            && tile_w.is_multiple_of(vw as usize)
        {
            vw
        } else {
            1
        };
        let store_instrs = gpu_sim::memory::vector_instr_count(tile_w as u64, threads_x, store_vw);
        ctx.cost.st_global_instrs += store_instrs;
        if self.accumulate {
            // Read-modify-write epilogue: load the existing C tile with the
            // same vectorization the store uses. No extra arithmetic — the
            // loads seed the register accumulators that the fma chain
            // already charges.
            ctx.cost.ld_global_instrs += store_instrs;
            for sub in subs {
                if sub.row == usize::MAX {
                    continue;
                }
                let addr = (sub.row * self.n + n_off) as u64 * eb as u64;
                ctx.ld_global_trace(BUF_C, addr, tile_w as u64 * eb as u64);
            }
        }
        if cfg.fused_bias_relu {
            let mut bias_addrs = [0u64; MAX_BLOCK_SUBWARPS];
            let n_bias_addrs = gather_row_addrs(subs, 4, &mut bias_addrs);
            if n_bias_addrs > 0 {
                ctx.ld_global_gather(BUF_BIAS, &bias_addrs[..n_bias_addrs], 4);
            }
            ctx.fp(2 * store_instrs, 0);
        }
        for sub in subs {
            if sub.row == usize::MAX {
                continue;
            }
            let addr = (sub.row * self.n + n_off) as u64 * eb as u64;
            ctx.st_global_trace(BUF_C, addr, tile_w as u64 * eb as u64);
        }
        let _ = lanes;
    }
}

impl<T: Scalar> SpmmKernel<'_, T> {
    /// The launch name for a configuration, without building a kernel —
    /// lets cache lookups skip swizzle construction on the hit path.
    pub(crate) fn launch_name(cfg: &SpmmConfig) -> String {
        format!("sputnik_spmm_{}_{}", T::TAG, cfg.tag())
    }
}

impl<T: Scalar> Kernel for SpmmKernel<'_, T> {
    fn name(&self) -> String {
        // The accumulate epilogue changes the cost trace (extra C loads),
        // so it must be a distinct launch identity for the cache and the
        // sanitizer memo.
        if self.accumulate {
            format!("{}_acc", Self::launch_name(&self.cfg))
        } else {
            Self::launch_name(&self.cfg)
        }
    }

    fn grid(&self) -> Dim3 {
        Dim3::xy(
            (self.n as u32).div_ceil(self.cfg.block_items_x),
            (self.a.rows() as u32).div_ceil(self.cfg.block_items_y),
        )
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::xy(self.cfg.threads_x(), self.cfg.block_items_y)
    }

    fn shared_mem_bytes(&self) -> u32 {
        self.cfg.smem_bytes::<T>()
    }

    fn regs_per_thread(&self) -> u32 {
        self.cfg.regs_per_thread()
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        let nnz = self.a.nnz() as u64;
        let mut bufs = vec![
            BufferSpec {
                id: BUF_A_VALUES,
                name: "a_values",
                footprint_bytes: nnz * T::BYTES as u64,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_A_INDICES,
                name: "a_indices",
                footprint_bytes: nnz * self.cfg.index_width.bytes() as u64,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_A_OFFSETS,
                name: "a_row_offsets",
                footprint_bytes: (self.a.rows() as u64 + 1) * 4,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_B,
                name: "b",
                footprint_bytes: (self.a.cols() * self.n) as u64 * T::BYTES as u64,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_C,
                name: "c",
                footprint_bytes: (self.a.rows() * self.n) as u64 * T::BYTES as u64,
                pattern: AccessPattern::Streaming,
            },
        ];
        if self.cfg.row_swizzle {
            bufs.push(BufferSpec {
                id: BUF_SWIZZLE,
                name: "row_indices",
                footprint_bytes: self.a.rows() as u64 * 4,
                pattern: AccessPattern::SharedReuse,
            });
        }
        if self.cfg.fused_bias_relu {
            bufs.push(BufferSpec {
                id: BUF_BIAS,
                name: "bias",
                footprint_bytes: self.a.rows() as u64 * 4,
                pattern: AccessPattern::SharedReuse,
            });
        }
        bufs
    }

    /// Structural cost signature (see [`Kernel::block_signature`]).
    ///
    /// Everything `cost_warp` records is a function of the per-subwarp work
    /// descriptors plus a handful of *alignment classes* — never of raw row
    /// ids or float values — so the signature hashes exactly those inputs:
    /// the tile width, the B-strip sector count, the store vector-width
    /// legality, and per subwarp the work sizes plus each traced address
    /// mod 32 (the sector granularity). Gathered addresses (row offsets,
    /// bias) contribute their exact deduplicated sector counts, computed with
    /// the same `sectors_gather` the trace itself uses. Blocks agreeing on
    /// all of this record bit-identical costs, which lets dataset sweeps
    /// execute one representative per signature — notably collapsing the
    /// grid's x extent, where the same row strip repeats across column tiles
    /// in the same alignment class.
    fn block_signature(&self, block: Dim3) -> Option<u64> {
        let cfg = &self.cfg;
        let eb = T::BYTES as u64;
        let ib = cfg.index_width.bytes() as u64;
        let n_off = block.x as usize * cfg.block_items_x as usize;
        let tile_w = cfg.block_items_x.min(self.n.saturating_sub(n_off) as u32) as usize;
        let mut fp = Fingerprint::new();
        fp.write_u64(tile_w as u64);
        if tile_w == 0 {
            return Some(fp.finish());
        }
        fp.write_u64(self.b_load_sectors(n_off, tile_w));
        let store_vw = self.n.is_multiple_of(cfg.vector_width as usize)
            && n_off.is_multiple_of(cfg.vector_width as usize)
            && tile_w.is_multiple_of(cfg.vector_width as usize);
        fp.write_u64(store_vw as u64);
        // Kernel-wide constant, but the signature is also compared across
        // dedup representatives in equivalence suites — keep it explicit.
        fp.write_u64(self.accumulate as u64);

        let biy = cfg.block_items_y as usize;
        let base_m = block.y as usize * biy;
        let mut subs_buf = [SubwarpWork::EMPTY; MAX_BLOCK_SUBWARPS];
        for (s, slot) in subs_buf.iter_mut().take(biy).enumerate() {
            *slot = self.subwarp_work(base_m + s);
        }
        let subs = &subs_buf[..biy];
        // Chunk boundaries are fixed per kernel, so hashing subwarps in order
        // preserves the per-warp grouping the divergence model depends on.
        for chunk in subs.chunks(cfg.subwarps_per_warp() as usize) {
            let mut gather = [0u64; MAX_BLOCK_SUBWARPS];
            let n_gather = gather_row_addrs(chunk, 4, &mut gather);
            fp.write_u64(gpu_sim::memory::sectors_gather(&gather[..n_gather], 8));
            if cfg.fused_bias_relu {
                fp.write_u64(gpu_sim::memory::sectors_gather(&gather[..n_gather], 4));
            }
            for sub in chunk {
                if sub.row == usize::MAX {
                    fp.write_u64(u64::MAX);
                    continue;
                }
                fp.write_u64(sub.total as u64);
                fp.write_u64(sub.nnz as u64);
                fp.write_u64(sub.aligned_offset as u64 * eb % 32);
                fp.write_u64(sub.aligned_offset as u64 * ib % 32);
                fp.write_u64((sub.row * self.n + n_off) as u64 * eb % 32);
            }
        }
        Some(fp.finish())
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        let cfg = &self.cfg;
        let n_off = block.x as usize * cfg.block_items_x as usize;
        let tile_w = cfg.block_items_x.min((self.n - n_off) as u32) as usize;
        if tile_w == 0 {
            return;
        }

        // Prelude: resolve every subwarp's row and alignment (stack buffer;
        // block_items_y <= 32 by config validation).
        let biy = cfg.block_items_y as usize;
        let base_m = block.y as usize * biy;
        let mut subs_buf = [SubwarpWork::EMPTY; MAX_BLOCK_SUBWARPS];
        for (s, slot) in subs_buf.iter_mut().take(biy).enumerate() {
            *slot = self.subwarp_work(base_m + s);
        }
        let subs = &subs_buf[..biy];

        // Cost: warps execute their subwarps in lockstep. A cache-hit
        // replay discards the cost, so skip the trace math entirely.
        if ctx.recording() {
            let spw = cfg.subwarps_per_warp() as usize;
            for chunk in subs.chunks(spw) {
                self.cost_warp(ctx, chunk, n_off, tile_w);
            }
        }

        // Functional output.
        if ctx.functional() && self.b.is_some() {
            for sub in subs {
                if sub.row != usize::MAX {
                    self.compute_subwarp(sub, n_off, tile_w);
                }
            }
        }
    }

    /// Declarative facts for the static auditor ([`gpu_sim::static_check`]).
    ///
    /// Every extent is derived from the kernel's *tile arithmetic* — the
    /// same address formulas `cost_warp` traces — independently of the
    /// footprints `buffers()` declares from the operand shapes, so the
    /// audit's extent-vs-footprint comparison genuinely cross-checks two
    /// derivations. Soundness arguments, per buffer:
    ///
    /// * `a_values` / `a_indices`: each subwarp reads
    ///   `[aligned_offset, aligned_offset + total)`. Without ROMA that is
    ///   `[offset, offset + nnz)`; with ROMA, `aligned_offset + total =
    ///   (offset - prefix) + (nnz + prefix) = offset + nnz` — the aligner
    ///   moves the start, never the end — so both are bounded by the CSR's
    ///   total nonzero count.
    /// * `a_row_offsets`: the prelude gathers an 8-byte offset pair at
    ///   `row * 4`, so the furthest byte is `(rows - 1) * 4 + 8`.
    /// * `b`: strips end at `(col + 1) * n <= cols * n` because validated
    ///   CSR column indices are `< cols`. (The trace adds B sectors in bulk
    ///   without per-address memcheck, so this static bound is the *only*
    ///   bounds guarantee B gets.)
    /// * `c` / `bias` / `row_indices`: indexed by real row ids `< rows`
    ///   (the swizzle is a permutation of `0..rows`).
    fn static_facts(&self) -> StaticFacts {
        let cfg = &self.cfg;
        let eb = T::BYTES as u64;
        let ib = cfg.index_width.bytes() as u64;
        let rows = self.a.rows() as u64;
        let cols = self.a.cols() as u64;
        let nnz = self.a.nnz() as u64;
        let n = self.n as u64;

        let mut bounds = vec![
            BufferBound {
                slot: BUF_A_VALUES.0,
                bound: AccessBound::Extent(nnz * eb),
            },
            BufferBound {
                slot: BUF_A_INDICES.0,
                bound: AccessBound::Extent(nnz * ib),
            },
            BufferBound {
                slot: BUF_A_OFFSETS.0,
                bound: AccessBound::Extent((rows + 1) * 4),
            },
            BufferBound {
                slot: BUF_B.0,
                bound: AccessBound::Extent(cols * n * eb),
            },
            BufferBound {
                slot: BUF_C.0,
                bound: AccessBound::Extent(rows * n * eb),
            },
        ];
        if cfg.row_swizzle {
            // The prelude loads one swizzled row id per *live* subwarp in
            // the warp, starting at address 0 — the worst chunk is
            // `subwarps_per_warp` wide (capped by the block's
            // `block_items_y` subwarps and the matrix height).
            let chunk = u64::from(cfg.subwarps_per_warp().min(cfg.block_items_y)).min(rows);
            bounds.push(BufferBound {
                slot: BUF_SWIZZLE.0,
                bound: AccessBound::Extent(chunk * 4),
            });
        }
        if cfg.fused_bias_relu {
            bounds.push(BufferBound {
                slot: BUF_BIAS.0,
                bound: AccessBound::Extent(rows * 4),
            });
        }

        // Vector-access alignment, the mod-`vw*eb` analogue of the address
        // classes `block_signature` hashes. ROMA proves residue 0 by
        // construction; `assume_aligned` must actually *check* the promise
        // against every non-empty row's start offset — an O(rows) scan that
        // turns an unpadded CSR into a static refutation instead of a
        // debug-only assertion.
        let vw = cfg.vector_width;
        let alignment = if vw <= 1 || self.vw_a() == 1 {
            AlignmentFacts::ScalarOnly
        } else if cfg.assume_aligned {
            // `subwarp_work` prefers the assume_aligned (raw offset) path
            // even when ROMA is also enabled, so the scan governs here.
            let worst = (0..self.a.rows())
                .filter(|&r| self.a.row_len(r) > 0)
                .map(|r| (self.a.row_offsets()[r] as u64 % u64::from(vw)) * eb)
                .max()
                .unwrap_or(0);
            AlignmentFacts::Residues(vec![VectorClass {
                slot: BUF_A_VALUES.0,
                vec_width: vw,
                elem_bytes: T::BYTES,
                worst_residue: worst,
            }])
        } else {
            // ROMA: the aligner backs every row start up to a multiple of
            // the vector width, and element 0 is allocation-aligned.
            AlignmentFacts::Residues(vec![VectorClass {
                slot: BUF_A_VALUES.0,
                vec_width: vw,
                elem_bytes: T::BYTES,
                worst_residue: 0,
            }])
        };

        StaticFacts {
            bounds: Some(bounds),
            // All staging is SmemScope::Warp — the warp that stores a strip
            // is its only consumer (Sputnik's subwarp tiling) — so no
            // block-scope bytes are ever staged and no barrier is needed.
            alignment,
            barrier: BarrierFacts::WarpSynchronous,
            stage: StageBound::Bytes(0),
        }
    }

    fn poison_output(&self, seed: u64) {
        // Simulated silent data corruption: scatter a few NaNs across the
        // output at seed-derived positions. Disjoint from block execution —
        // the launcher calls this only after all blocks complete.
        if let Some(out) = self.out.as_ref() {
            let len = out.len();
            if len == 0 {
                return;
            }
            for i in 0..3u64 {
                let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z ^= z >> 31;
                unsafe { out.write(z as usize % len, T::from_f32(f32::NAN)) };
            }
        }
    }
}

/// Run SpMM on the simulated GPU: allocates the output, builds the swizzle
/// (when enabled), launches functionally, and returns `(C, stats)`.
/// Panics on invalid inputs or device faults; [`try_spmm`] is the
/// recoverable equivalent.
pub fn spmm<T: Scalar>(
    gpu: &Gpu,
    a: &CsrMatrix<T>,
    b: &Matrix<T>,
    cfg: SpmmConfig,
) -> (Matrix<T>, LaunchStats) {
    try_spmm(gpu, a, b, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible SpMM: validates shapes, configuration legality, operand
/// finiteness, and device resource limits up front, then launches through
/// [`Gpu::try_launch`] so injected device faults surface as errors instead
/// of panics. Returns `(C, stats)` on success.
pub fn try_spmm<T: Scalar>(
    gpu: &Gpu,
    a: &CsrMatrix<T>,
    b: &Matrix<T>,
    cfg: SpmmConfig,
) -> Result<(Matrix<T>, LaunchStats), SputnikError> {
    require_finite("a", a.values())?;
    require_finite("b", b.as_slice())?;
    let swizzle = if cfg.row_swizzle {
        RowSwizzle::by_length_desc(a)
    } else {
        RowSwizzle::identity(a.rows())
    };
    let mut out = Matrix::<T>::zeros(a.rows(), b.cols());
    let stats = {
        let kernel = SpmmKernel::try_new(a, b, &mut out, &swizzle, cfg)?;
        gpu.try_launch(&kernel)?
    };
    Ok((out, stats))
}

/// Profile SpMM (cost model only): no dense matrices are allocated, so this
/// scales to the corpus's largest problems.
pub fn spmm_profile<T: Scalar>(
    gpu: &Gpu,
    a: &CsrMatrix<T>,
    b_rows: usize,
    n: usize,
    cfg: SpmmConfig,
) -> LaunchStats {
    assert_eq!(a.cols(), b_rows, "inner dimensions must agree");
    let swizzle = if cfg.row_swizzle {
        RowSwizzle::by_length_desc(a)
    } else {
        RowSwizzle::identity(a.rows())
    };
    let kernel = SpmmKernel::<T>::for_profile(a, n, &swizzle, cfg);
    gpu.profile(&kernel)
}

/// [`spmm_profile`] through a cross-launch [`LaunchCache`]: returns the
/// stats plus whether they were served from the cache. The key combines the
/// kernel name (config + scalar type), the device, and a fingerprint of the
/// sparse topology mixed with `n` — the one problem dimension the kernel
/// name does not encode. The swizzle is derived deterministically from the
/// topology, so it needs no separate key component.
pub fn spmm_profile_cached<T: Scalar>(
    gpu: &Gpu,
    cache: &LaunchCache,
    a: &CsrMatrix<T>,
    b_rows: usize,
    n: usize,
    cfg: SpmmConfig,
) -> (LaunchStats, bool) {
    assert_eq!(a.cols(), b_rows, "inner dimensions must agree");
    // The key needs only the config-derived name, so a hit skips swizzle
    // construction entirely. Fault-plan GPUs must not be served from (or
    // populate) the cache: schedules consume per-launch indices.
    if gpu.fault_plan().is_some() {
        return (spmm_profile(gpu, a, b_rows, n, cfg), false);
    }
    let key = LaunchKey {
        kernel: SpmmKernel::<T>::launch_name(&cfg),
        fingerprint: operand_fingerprint(a, n),
        device: gpu.device().name.clone(),
        arch: gpu.device().arch_fingerprint(),
    };
    if let Some(stats) = cache.lookup(&key) {
        gpu.note_cache_hit(&stats);
        return (stats, true);
    }
    let stats = spmm_profile(gpu, a, b_rows, n, cfg);
    cache.insert(key, stats.clone());
    (stats, false)
}

/// The launch-cache fingerprint for an SpMM-shaped problem: the sparse
/// topology plus the dense column count `n` (the kernel name covers the
/// configuration and scalar type; the device is a separate key component).
pub(crate) fn operand_fingerprint<T: Scalar>(a: &CsrMatrix<T>, n: usize) -> u64 {
    let mut fp = Fingerprint::new();
    fp.write_u64(a.fingerprint());
    fp.write_u64(n as u64);
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sparse::gen;

    fn check_against_reference(a: &CsrMatrix<f32>, n: usize, cfg: SpmmConfig) {
        let b = Matrix::<f32>::random(a.cols(), n, 77);
        let gpu = Gpu::v100();
        let (c, stats) = spmm(&gpu, a, &b, cfg);
        let expect = reference::spmm(a, &b);
        let diff = c.max_abs_diff(&expect);
        assert!(diff < 1e-3, "cfg {cfg:?}: max diff {diff}");
        assert!(stats.time_us > 0.0);
        assert_eq!(stats.flops > 0, a.nnz() > 0, "flops iff nonzeros exist");
    }

    #[test]
    fn matches_reference_default_config() {
        let a = gen::uniform(64, 128, 0.8, 1);
        check_against_reference(&a, 64, SpmmConfig::default());
    }

    #[test]
    fn matches_reference_all_ablations() {
        let a = gen::uniform(48, 96, 0.7, 2);
        let base = SpmmConfig::default();
        let variants = [
            SpmmConfig {
                row_swizzle: false,
                ..base
            },
            SpmmConfig {
                vector_width: 1,
                roma: false,
                ..base
            },
            SpmmConfig {
                residue_unroll: false,
                ..base
            },
            SpmmConfig {
                index_prescale: false,
                ..base
            },
            SpmmConfig {
                vector_width: 2,
                ..base
            },
            SpmmConfig {
                block_items_y: 1,
                ..base
            },
            SpmmConfig {
                block_items_y: 8,
                ..base
            },
            SpmmConfig {
                block_items_x: 64,
                block_items_y: 2,
                ..base
            },
        ];
        for cfg in variants {
            check_against_reference(&a, 32, cfg);
        }
    }

    #[test]
    fn matches_reference_ragged_shapes() {
        // N not divisible by the tile, rows not divisible by block_items_y.
        let a = gen::uniform(37, 53, 0.6, 3);
        check_against_reference(&a, 19, SpmmConfig::heuristic::<f32>(19));
        check_against_reference(&a, 100, SpmmConfig::heuristic::<f32>(100));
    }

    #[test]
    fn matches_reference_extreme_sparsity() {
        check_against_reference(&gen::uniform(32, 64, 0.99, 4), 32, SpmmConfig::default());
        check_against_reference(&gen::uniform(32, 64, 0.05, 5), 32, SpmmConfig::default());
        check_against_reference(&CsrMatrix::<f32>::empty(16, 16), 16, SpmmConfig::default());
    }

    #[test]
    fn matches_reference_high_cov() {
        let a = gen::with_cov(128, 256, 0.85, 1.5, 6);
        check_against_reference(&a, 64, SpmmConfig::default());
    }

    #[test]
    fn mixed_precision_matches_reference_loosely() {
        use sparse::Half;
        let a32 = gen::uniform(32, 64, 0.8, 7);
        let a = a32.convert::<Half>();
        let mut b32 = Matrix::<f32>::random(64, 32, 8);
        // Quantize B to half precision for an apples-to-apples reference.
        let b = {
            let mut b16 = Matrix::<Half>::zeros(64, 32);
            for r in 0..64 {
                for c in 0..32 {
                    b16.set(r, c, Half::from_f32(b32.get(r, c)));
                }
            }
            b16
        };
        b32 = b.to_f32();
        let gpu = Gpu::v100();
        let cfg = SpmmConfig::heuristic::<Half>(32);
        let (c, _) = spmm(&gpu, &a, &b, cfg);
        let expect = reference::spmm(&a.convert::<f32>(), &b32);
        // FP32 accumulate, FP16 store: error bounded by half rounding.
        for r in 0..32 {
            for col in 0..32 {
                let got = c.get(r, col).to_f32();
                let want = expect.get(r, col);
                assert!(
                    (got - want).abs() <= want.abs() * 0.01 + 0.05,
                    "({r},{col}): {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn fused_bias_relu_epilogue() {
        let a = gen::uniform(32, 64, 0.7, 9);
        let b = Matrix::<f32>::random(64, 32, 10);
        let bias: Vec<f32> = (0..32).map(|i| (i as f32 - 16.0) / 8.0).collect();
        let gpu = Gpu::v100();
        let cfg = SpmmConfig {
            fused_bias_relu: true,
            ..SpmmConfig::default()
        };
        let swizzle = RowSwizzle::by_length_desc(&a);
        let mut out = Matrix::<f32>::zeros(32, 32);
        let stats = {
            let kernel = SpmmKernel::new(&a, &b, &mut out, &swizzle, cfg).with_bias_relu(&bias);
            gpu.launch(&kernel)
        };
        assert!(stats.time_us > 0.0);
        let expect = reference::bias_relu(&reference::spmm(&a, &b), &bias);
        assert!(out.max_abs_diff(&expect) < 1e-3);
    }

    #[test]
    fn vector_loads_reduce_instructions() {
        let a = gen::uniform(512, 1024, 0.8, 11);
        let gpu = Gpu::v100();
        let scalar = spmm_profile(
            &gpu,
            &a,
            1024,
            256,
            SpmmConfig {
                vector_width: 1,
                roma: false,
                ..SpmmConfig::default()
            },
        );
        let vec4 = spmm_profile(&gpu, &a, 1024, 256, SpmmConfig::default());
        assert!(
            vec4.instructions < scalar.instructions,
            "vec4 {} vs scalar {}",
            vec4.instructions,
            scalar.instructions
        );
    }

    #[test]
    fn swizzle_helps_imbalanced_matrices() {
        let a = gen::with_cov(4096, 2048, 0.75, 1.2, 12);
        let gpu = Gpu::v100();
        let base = SpmmConfig::heuristic::<f32>(128);
        let with = spmm_profile(&gpu, &a, 2048, 128, base);
        let without = spmm_profile(
            &gpu,
            &a,
            2048,
            128,
            SpmmConfig {
                row_swizzle: false,
                ..base
            },
        );
        assert!(
            with.time_us < without.time_us,
            "swizzle {} should beat no-swizzle {}",
            with.time_us,
            without.time_us
        );
    }

    #[test]
    fn dedup_profile_is_bit_identical() {
        // The fast path (one execution per structural signature) must agree
        // exactly — not approximately — with brute force on every field.
        let shapes = [(64usize, 96usize, 32usize, 0.7), (128, 128, 128, 0.9)];
        for (m, k, n, sp) in shapes {
            let a = gen::with_cov(m, k, sp, 0.8, 21);
            let swizzle = RowSwizzle::by_length_desc(&a);
            let cfg = SpmmConfig::default();
            let fast = {
                let kernel = SpmmKernel::<f32>::for_profile(&a, n, &swizzle, cfg);
                Gpu::v100().profile(&kernel)
            };
            let brute = {
                let kernel = SpmmKernel::<f32>::for_profile(&a, n, &swizzle, cfg);
                Gpu::v100().with_block_dedup(false).profile(&kernel)
            };
            assert_eq!(fast, brute, "{m}x{k} n={n}");
        }
    }

    #[test]
    fn cached_profile_replays_identical_stats() {
        let a = gen::uniform(64, 128, 0.8, 22);
        let gpu = Gpu::v100();
        let cache = gpu_sim::LaunchCache::new();
        let cfg = SpmmConfig::default();
        let (first, hit1) = spmm_profile_cached(&gpu, &cache, &a, 128, 64, cfg);
        let (second, hit2) = spmm_profile_cached(&gpu, &cache, &a, 128, 64, cfg);
        assert!(!hit1, "cold lookup must miss");
        assert!(hit2, "identical problem must hit");
        assert_eq!(first, second);
        assert_eq!(first, spmm_profile(&gpu, &a, 128, 64, cfg));
        // A different dense width is a different problem even though the
        // kernel name is unchanged.
        let (_, hit3) = spmm_profile_cached(&gpu, &cache, &a, 128, 32, cfg);
        assert!(!hit3);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn profile_matches_launch_timing() {
        // Cost traces must be identical between functional and profile mode.
        let a = gen::uniform(64, 128, 0.8, 13);
        let b = Matrix::<f32>::random(128, 64, 14);
        let gpu = Gpu::v100();
        let (_, launch) = spmm(&gpu, &a, &b, SpmmConfig::default());
        let profile = spmm_profile(&gpu, &a, 128, 64, SpmmConfig::default());
        assert_eq!(launch.instructions, profile.instructions);
        assert!((launch.time_us - profile.time_us).abs() < 1e-9);
    }
}
