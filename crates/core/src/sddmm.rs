//! The Sputnik SDDMM kernel (Section VI of the paper).
//!
//! Computes `D = (A * B^T) ⊙ I[C]`: for every nonzero position (i, j) of the
//! sparse mask `C`, the dot product of row i of dense `A` with row j of
//! dense `B` (the transposed-RHS form that weight gradients and sparse
//! attention need).
//!
//! Decomposition differences from SpMM (Section VI-A): thread blocks map to
//! 1-D strips of *consecutive nonzeros* rather than output columns, the grid
//! is sized for the worst-case row and surplus blocks return early, and each
//! thread computes a slice of every dot product in its tile with a warp
//! shuffle reduction at the end — avoiding both uncoalesced accesses to the
//! transposed operand and a shared-memory transpose (which would steal L1
//! capacity on Volta, where L1 and shared memory are the same storage).

use crate::config::SddmmConfig;
use crate::error::SputnikError;
use crate::spmm::require_finite;
use gpu_sim::{
    AccessBound, AccessPattern, AlignmentFacts, BarrierFacts, BlockContext, BufferBound, BufferId,
    BufferSpec, Dim3, Fingerprint, Gpu, Kernel, LaunchCache, LaunchKey, LaunchStats, StageBound,
    StaticFacts, SyncUnsafeSlice,
};
use sparse::{CsrMatrix, Matrix, RowSwizzle, Scalar};

pub const BUF_LHS: BufferId = BufferId(0);
pub const BUF_RHS: BufferId = BufferId(1);
pub const BUF_MASK_OFFSETS: BufferId = BufferId(2);
pub const BUF_MASK_INDICES: BufferId = BufferId(3);
pub const BUF_OUT: BufferId = BufferId(4);
pub const BUF_SWIZZLE: BufferId = BufferId(5);

/// The simulated SDDMM kernel. Construct functionally with
/// [`SddmmKernel::new`] or cost-only with [`SddmmKernel::for_profile`].
pub struct SddmmKernel<'a, T: Scalar> {
    lhs: Option<&'a Matrix<T>>,
    rhs: Option<&'a Matrix<T>>,
    mask: &'a CsrMatrix<T>,
    out_values: Option<SyncUnsafeSlice<'a, T>>,
    swizzle: &'a RowSwizzle,
    cfg: SddmmConfig,
    /// Dot-product length (columns of both dense operands).
    k: usize,
    /// Strips per row in the over-provisioned grid.
    max_strips: u32,
}

impl<'a, T: Scalar> SddmmKernel<'a, T> {
    pub fn new(
        lhs: &'a Matrix<T>,
        rhs: &'a Matrix<T>,
        mask: &'a CsrMatrix<T>,
        out_values: &'a mut [T],
        swizzle: &'a RowSwizzle,
        cfg: SddmmConfig,
    ) -> Self {
        Self::try_new(lhs, rhs, mask, out_values, swizzle, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: every shape/config violation becomes a
    /// [`SputnikError`] instead of a panic.
    pub fn try_new(
        lhs: &'a Matrix<T>,
        rhs: &'a Matrix<T>,
        mask: &'a CsrMatrix<T>,
        out_values: &'a mut [T],
        swizzle: &'a RowSwizzle,
        cfg: SddmmConfig,
    ) -> Result<Self, SputnikError> {
        if lhs.cols() != rhs.cols() {
            return Err(SputnikError::ShapeMismatch {
                expected: format!("RHS with {} columns (RHS is transposed)", lhs.cols()),
                found: format!("{}x{}", rhs.rows(), rhs.cols()),
                context: "sddmm dot-product length",
            });
        }
        if mask.rows() != lhs.rows() || mask.cols() != rhs.rows() {
            return Err(SputnikError::ShapeMismatch {
                expected: format!("{}x{} mask", lhs.rows(), rhs.rows()),
                found: format!("{}x{}", mask.rows(), mask.cols()),
                context: "sddmm mask",
            });
        }
        if out_values.len() != mask.nnz() {
            return Err(SputnikError::ShapeMismatch {
                expected: format!("{} output values (one per mask nonzero)", mask.nnz()),
                found: format!("{}", out_values.len()),
                context: "sddmm output",
            });
        }
        if swizzle.len() != mask.rows() {
            return Err(SputnikError::ShapeMismatch {
                expected: format!("swizzle over {} rows", mask.rows()),
                found: format!("{} entries", swizzle.len()),
                context: "sddmm row swizzle",
            });
        }
        cfg.validate()
            .map_err(|reason| SputnikError::IllegalConfig { reason })?;
        let k = lhs.cols();
        let max_strips = Self::strips_for(mask, &cfg);
        Ok(Self {
            lhs: Some(lhs),
            rhs: Some(rhs),
            mask,
            out_values: Some(SyncUnsafeSlice::new(out_values)),
            swizzle,
            cfg,
            k,
            max_strips,
        })
    }

    /// Cost-model-only kernel; dense operands are described by `k` alone.
    pub fn for_profile(
        mask: &'a CsrMatrix<T>,
        k: usize,
        swizzle: &'a RowSwizzle,
        cfg: SddmmConfig,
    ) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid SDDMM configuration: {e}"));
        assert_eq!(swizzle.len(), mask.rows());
        let max_strips = Self::strips_for(mask, &cfg);
        Self {
            lhs: None,
            rhs: None,
            mask,
            out_values: None,
            swizzle,
            cfg,
            k,
            max_strips,
        }
    }

    /// "Because the number of nonzeros in each row cannot be inferred without
    /// inspecting the sparse matrix, we launch the maximum number of thread
    /// blocks that could be needed."
    fn strips_for(mask: &CsrMatrix<T>, cfg: &SddmmConfig) -> u32 {
        (mask.max_row_len() as u32)
            .div_ceil(cfg.block_items_x)
            .max(1)
    }

    /// Effective vector width for the dense operands: full width only when
    /// the inner dimension is divisible by it (Section VI-B).
    fn vw(&self) -> u32 {
        let mut vw = self.cfg.vector_width;
        while vw > 1 && !self.k.is_multiple_of(vw as usize) {
            vw /= 2;
        }
        vw
    }
}

impl<T: Scalar> SddmmKernel<'_, T> {
    /// The launch name for a configuration, without building a kernel —
    /// lets cache lookups skip swizzle construction on the hit path.
    pub(crate) fn launch_name(cfg: &SddmmConfig) -> String {
        format!("sputnik_sddmm_{}_{}", T::TAG, cfg.tag())
    }
}

impl<T: Scalar> Kernel for SddmmKernel<'_, T> {
    fn name(&self) -> String {
        Self::launch_name(&self.cfg)
    }

    fn grid(&self) -> Dim3 {
        Dim3::xy(self.max_strips, self.mask.rows() as u32)
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::x(32)
    }

    fn shared_mem_bytes(&self) -> u32 {
        // Strip column indices staged in shared memory.
        self.cfg.block_items_x * 4
    }

    fn regs_per_thread(&self) -> u32 {
        // The LHS slice lives in registers across the whole tile — the
        // design choice that trades registers for L1 capacity (Section VI-A).
        28 + (self.k as u32 / 32).min(64)
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        let eb = T::BYTES as u64;
        let mut bufs = vec![
            BufferSpec {
                id: BUF_LHS,
                name: "lhs",
                footprint_bytes: (self.mask.rows() * self.k) as u64 * eb,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_RHS,
                name: "rhs",
                footprint_bytes: (self.mask.cols() * self.k) as u64 * eb,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_MASK_OFFSETS,
                name: "mask_row_offsets",
                footprint_bytes: (self.mask.rows() as u64 + 1) * 4,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_MASK_INDICES,
                name: "mask_col_indices",
                footprint_bytes: self.mask.nnz() as u64 * 4,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_OUT,
                name: "out_values",
                footprint_bytes: self.mask.nnz() as u64 * eb,
                pattern: AccessPattern::Streaming,
            },
        ];
        if self.cfg.row_swizzle {
            bufs.push(BufferSpec {
                id: BUF_SWIZZLE,
                name: "row_indices",
                footprint_bytes: self.mask.rows() as u64 * 4,
                pattern: AccessPattern::SharedReuse,
            });
        }
        bufs
    }

    /// Structural cost signature (see [`Kernel::block_signature`]).
    ///
    /// An SDDMM block's trace is determined by its strip length `s` and the
    /// alignment class (mod 32, the sector size) of every address it touches:
    /// the swizzle/offset lookups, the strip's index/value/output range, the
    /// LHS row, and each RHS row in the strip. All dot products share the
    /// same length `k`, so when the dense row stride `k * eb` is a multiple
    /// of the sector size every RHS row lands in the same class and the
    /// over-provisioned grid collapses to a handful of signatures.
    fn block_signature(&self, block: Dim3) -> Option<u64> {
        let cfg = &self.cfg;
        let eb = T::BYTES as u64;
        let k = self.k as u64;
        let row = if cfg.row_swizzle {
            self.swizzle.row(block.y as usize)
        } else {
            block.y as usize
        };
        let mut fp = Fingerprint::new();
        if cfg.row_swizzle {
            fp.write_u64(block.y as u64 * 4 % 32);
        }
        fp.write_u64(row as u64 * 4 % 32);
        let row_start = self.mask.row_offsets()[row] as usize;
        let row_nnz = self.mask.row_len(row);
        let strip_start = block.x as usize * cfg.block_items_x as usize;
        if strip_start >= row_nnz {
            // Early-exit block: only the prelude was traced.
            fp.write_u64(u64::MAX);
            return Some(fp.finish());
        }
        let s = (cfg.block_items_x as usize).min(row_nnz - strip_start);
        fp.write_u64(s as u64);
        fp.write_u64((row_start + strip_start) as u64 * 4 % 32);
        fp.write_u64((row_start + strip_start) as u64 * eb % 32);
        fp.write_u64(row as u64 * k * eb % 32);
        if (k * eb).is_multiple_of(32) {
            fp.write_u64(0);
        } else {
            let (cols, _) = self.mask.row(row);
            for &j in &cols[strip_start..strip_start + s] {
                fp.write_u64(j as u64 * k * eb % 32);
            }
        }
        Some(fp.finish())
    }

    /// Static safety facts for the launch auditor.
    ///
    /// Soundness: every simulated access is scalar (`vector_width` only
    /// shapes instruction counts, never `check_align`), so alignment is
    /// trivially proven. Per-buffer access ends:
    /// - LHS: one row per block at `row * k * eb` for `k * eb` bytes, and
    ///   `row < mask.rows()` — end `rows * k * eb`, the footprint.
    /// - RHS: row `j * k * eb` for `k * eb` bytes with `j < mask.cols()` by
    ///   the CSR column invariant — end `cols * k * eb`.
    /// - mask offsets: an 8-byte pair at `row * 4`, max end `(rows + 1) * 4`.
    /// - mask indices: strip index loads end at `nnz * 4`; with
    ///   `scale_by_mask` the value pass re-reads through the same buffer id
    ///   at element width, ending at `nnz * eb` — the bound covers both.
    /// - output: strip stores end at `nnz * eb`.
    /// - swizzle: one id per block at `block.y * 4`, end `rows * 4`.
    ///
    /// Blocks are a single warp, and the staged strip indices fit the
    /// declared `block_items_x * 4` bytes of shared memory exactly.
    fn static_facts(&self) -> StaticFacts {
        let eb = T::BYTES as u64;
        let k = self.k as u64;
        let rows = self.mask.rows() as u64;
        let cols = self.mask.cols() as u64;
        let nnz = self.mask.nnz() as u64;
        let mut bounds = vec![
            BufferBound {
                slot: BUF_LHS.0,
                bound: AccessBound::Extent(rows * k * eb),
            },
            BufferBound {
                slot: BUF_RHS.0,
                bound: AccessBound::Extent(cols * k * eb),
            },
            BufferBound {
                slot: BUF_MASK_OFFSETS.0,
                bound: AccessBound::Extent((rows + 1) * 4),
            },
            BufferBound {
                slot: BUF_MASK_INDICES.0,
                bound: AccessBound::Extent(nnz * 4.max(eb)),
            },
            BufferBound {
                slot: BUF_OUT.0,
                bound: AccessBound::Extent(nnz * eb),
            },
        ];
        if self.cfg.row_swizzle {
            bounds.push(BufferBound {
                slot: BUF_SWIZZLE.0,
                bound: AccessBound::Extent(rows * 4),
            });
        }
        StaticFacts {
            bounds: Some(bounds),
            alignment: AlignmentFacts::ScalarOnly,
            barrier: BarrierFacts::WarpSynchronous,
            stage: StageBound::Bytes(u64::from(self.cfg.block_items_x) * 4),
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        let cfg = &self.cfg;
        let bix = cfg.block_items_x as usize;
        let row = if cfg.row_swizzle {
            if cfg.row_swizzle {
                ctx.ld_global(BUF_SWIZZLE, block.y as u64 * 4, 1, 1, 4);
            }
            self.swizzle.row(block.y as usize)
        } else {
            block.y as usize
        };
        let strip = block.x as usize;

        // Prelude: row extent lookup + early-exit check.
        ctx.misc(5);
        ctx.ld_global(BUF_MASK_OFFSETS, row as u64 * 4, 2, 1, 4);
        let row_start = self.mask.row_offsets()[row] as usize;
        let row_nnz = self.mask.row_len(row);
        let strip_start = strip * bix;
        if strip_start >= row_nnz {
            // Over-provisioned block: "each thread block calculates if it has
            // work to do and returns early if it is not needed."
            return;
        }
        let s = bix.min(row_nnz - strip_start);
        let k = self.k;
        let eb = T::BYTES;
        let vw = self.vw();
        let tpo = cfg.threads_per_output_tile;

        let (cols, _) = self.mask.row(row);
        let strip_cols = &cols[strip_start..strip_start + s];

        // ---- Cost trace (skipped wholesale on cache-hit replays) -----------
        if ctx.recording() {
            // Scalar loads of the strip's column indices (sparse-matrix
            // accesses are scalar per Section VI-B).
            let idx_addr = (row_start + strip_start) as u64 * 4;
            ctx.ld_global(BUF_MASK_INDICES, idx_addr, s as u32, 1, 4);
            ctx.st_shared(s as u32, 1, 4, 1);
            ctx.misc(3);

            // LHS row: loaded once per block, spread over all 32 lanes.
            let lhs_instrs = gpu_sim::memory::vector_instr_count(k as u64, 32, vw);
            ctx.cost.ld_global_instrs += lhs_instrs;
            ctx.cost.gmem[BUF_LHS.0 as usize].ld_sectors += gpu_sim::memory::sectors_contiguous(
                (row * k) as u64 * eb as u64,
                k as u64 * eb as u64,
            );

            // Output groups: 32/tpo outputs processed concurrently per group.
            let outputs_per_group = (32 / tpo).max(1) as usize;
            let groups = s.div_ceil(outputs_per_group) as u64;
            // Each lane covers k / tpo elements of its output's dot product,
            // so a group costs k/tpo serialized steps across the warp.
            let per_group_loads = (k as u64).div_ceil(tpo as u64 * vw as u64).max(1);
            let per_group_fmas = (k as u64).div_ceil(tpo as u64).max(1);
            let reduce_steps = (tpo as f64).log2() as u64;
            ctx.cost.ld_global_instrs += groups * per_group_loads;
            ctx.cost.fma_instrs += groups * per_group_fmas;
            ctx.shfl(groups * reduce_steps);
            ctx.fp(groups * reduce_steps, 0);
            ctx.misc(groups * 3);

            // RHS rows: one contiguous K-element read per output. When the
            // row stride is a whole number of sectors every row lands in the
            // same alignment class (the fact the block signature already
            // exploits), so one multiply replaces the per-row loop —
            // bit-identical to summing `sectors_contiguous` per row.
            let row_bytes = k as u64 * eb as u64;
            if row_bytes.is_multiple_of(gpu_sim::memory::SECTOR_BYTES) {
                ctx.cost.gmem[BUF_RHS.0 as usize].ld_sectors +=
                    s as u64 * gpu_sim::memory::sectors_contiguous(0, row_bytes);
            } else {
                for &j in strip_cols {
                    ctx.cost.gmem[BUF_RHS.0 as usize].ld_sectors +=
                        gpu_sim::memory::sectors_contiguous(j as u64 * row_bytes, row_bytes);
                }
            }
            ctx.cost.flops += 2 * (s * k) as u64;

            // General SDDMM: scale each output by the mask's stored value —
            // "1 load and 1 multiply instruction prior to storing the output".
            if cfg.scale_by_mask {
                let val_addr = (row_start + strip_start) as u64 * eb as u64;
                ctx.ld_global(BUF_MASK_INDICES, val_addr, s as u32, 1, eb);
                ctx.fp((s as u64).div_ceil(32), s as u64);
                ctx.cost.flops += s as u64;
            }

            // Scalar stores of the strip's outputs.
            let out_addr = (row_start + strip_start) as u64 * eb as u64;
            ctx.st_global(BUF_OUT, out_addr, s as u32, 1, eb);
        }

        // ---- Functional ----------------------------------------------------
        if let (true, Some(lhs), Some(rhs), Some(out)) = (
            ctx.functional(),
            self.lhs,
            self.rhs,
            self.out_values.as_ref(),
        ) {
            let lrow = &lhs.as_slice()[row * k..(row + 1) * k];
            let (_, mask_vals) = self.mask.row(row);
            let r = rhs.as_slice();
            let rrow = |j: u32| &r[j as usize * k..(j as usize + 1) * k];
            let emit = |t: usize, mut acc: f32| {
                if cfg.scale_by_mask {
                    acc *= mask_vals[strip_start + t].to_f32();
                }
                // Disjoint: each nonzero belongs to exactly one strip.
                unsafe { out.write(row_start + strip_start + t, T::from_f32(acc)) };
            };
            // Left-to-right FMA chain per dot, same order as the reference
            // product (horizontal reductions are never lane-split). Batches
            // of four run their independent chains interleaved for ILP.
            let mut quads = strip_cols.chunks_exact(4);
            let mut t = 0;
            for q in &mut quads {
                let accs = gpu_sim::lanes::fma_dot4(
                    lrow,
                    [rrow(q[0]), rrow(q[1]), rrow(q[2]), rrow(q[3])],
                    |v| v.to_f32(),
                );
                for acc in accs {
                    emit(t, acc);
                    t += 1;
                }
            }
            for &j in quads.remainder() {
                emit(t, gpu_sim::lanes::fma_dot(lrow, rrow(j), |v| v.to_f32()));
                t += 1;
            }
        }
    }

    fn poison_output(&self, seed: u64) {
        // Simulated silent data corruption (see SpmmKernel::poison_output).
        if let Some(out) = self.out_values.as_ref() {
            let len = out.len();
            if len == 0 {
                return;
            }
            for i in 0..3u64 {
                let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z ^= z >> 31;
                unsafe { out.write(z as usize % len, T::from_f32(f32::NAN)) };
            }
        }
    }
}

/// Run SDDMM on the simulated GPU: returns the sparse output (the mask's
/// topology with computed values) and launch statistics. Panics on invalid
/// inputs or device faults; [`try_sddmm`] is the recoverable equivalent.
pub fn sddmm<T: Scalar>(
    gpu: &Gpu,
    lhs: &Matrix<T>,
    rhs: &Matrix<T>,
    mask: &CsrMatrix<T>,
    cfg: SddmmConfig,
) -> (CsrMatrix<T>, LaunchStats) {
    try_sddmm(gpu, lhs, rhs, mask, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible SDDMM: validates shapes, configuration legality, operand
/// finiteness, and device resource limits, then launches through
/// [`Gpu::try_launch`] so injected faults surface as errors.
pub fn try_sddmm<T: Scalar>(
    gpu: &Gpu,
    lhs: &Matrix<T>,
    rhs: &Matrix<T>,
    mask: &CsrMatrix<T>,
    cfg: SddmmConfig,
) -> Result<(CsrMatrix<T>, LaunchStats), SputnikError> {
    require_finite("lhs", lhs.as_slice())?;
    require_finite("rhs", rhs.as_slice())?;
    require_finite("mask", mask.values())?;
    let swizzle = if cfg.row_swizzle {
        RowSwizzle::by_length_desc(mask)
    } else {
        RowSwizzle::identity(mask.rows())
    };
    let mut values = vec![T::zero(); mask.nnz()];
    let stats = {
        let kernel = SddmmKernel::try_new(lhs, rhs, mask, &mut values, &swizzle, cfg)?;
        gpu.try_launch(&kernel)?
    };
    Ok((mask.with_values(values), stats))
}

/// Profile SDDMM (cost model only).
pub fn sddmm_profile<T: Scalar>(
    gpu: &Gpu,
    mask: &CsrMatrix<T>,
    k: usize,
    cfg: SddmmConfig,
) -> LaunchStats {
    let swizzle = if cfg.row_swizzle {
        RowSwizzle::by_length_desc(mask)
    } else {
        RowSwizzle::identity(mask.rows())
    };
    let kernel = SddmmKernel::<T>::for_profile(mask, k, &swizzle, cfg);
    gpu.profile(&kernel)
}

/// [`sddmm_profile`] through a cross-launch [`LaunchCache`]: returns the
/// stats plus whether they were served from the cache. The fingerprint mixes
/// the mask topology with `k`, the dot-product length the kernel name does
/// not encode.
pub fn sddmm_profile_cached<T: Scalar>(
    gpu: &Gpu,
    cache: &LaunchCache,
    mask: &CsrMatrix<T>,
    k: usize,
    cfg: SddmmConfig,
) -> (LaunchStats, bool) {
    // The key needs only the config-derived name, so a hit skips swizzle
    // construction. Fault-plan GPUs must not be served from (or populate)
    // the cache: schedules consume per-launch indices.
    if gpu.fault_plan().is_some() {
        return (sddmm_profile(gpu, mask, k, cfg), false);
    }
    let key = LaunchKey {
        kernel: SddmmKernel::<T>::launch_name(&cfg),
        fingerprint: mask_fingerprint(mask, k),
        device: gpu.device().name.clone(),
        arch: gpu.device().arch_fingerprint(),
    };
    if let Some(stats) = cache.lookup(&key) {
        gpu.note_cache_hit(&stats);
        return (stats, true);
    }
    let stats = sddmm_profile(gpu, mask, k, cfg);
    cache.insert(key, stats.clone());
    (stats, false)
}

/// The launch-cache fingerprint for an SDDMM-shaped problem: the mask
/// topology plus `k`, the dot-product length the kernel name does not
/// encode (shared with the batched path).
pub(crate) fn mask_fingerprint<T: Scalar>(mask: &CsrMatrix<T>, k: usize) -> u64 {
    let mut fp = Fingerprint::new();
    fp.write_u64(mask.fingerprint());
    fp.write_u64(k as u64);
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sparse::gen;

    fn check(mask: &CsrMatrix<f32>, k: usize, cfg: SddmmConfig) {
        let lhs = Matrix::<f32>::random(mask.rows(), k, 31);
        let rhs = Matrix::<f32>::random(mask.cols(), k, 32);
        let gpu = Gpu::v100();
        let (d, stats) = sddmm(&gpu, &lhs, &rhs, mask, cfg);
        let expect = reference::sddmm(&lhs, &rhs, mask);
        assert!(d.same_pattern(&expect));
        for (got, want) in d.values().iter().zip(expect.values()) {
            assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
        assert!(stats.time_us > 0.0);
    }

    #[test]
    fn matches_reference_default() {
        let mask = gen::uniform(48, 40, 0.7, 33);
        check(&mask, 64, SddmmConfig::default());
    }

    #[test]
    fn matches_reference_config_sweep() {
        let mask = gen::uniform(32, 32, 0.6, 34);
        for cfg in [
            SddmmConfig {
                vector_width: 1,
                ..SddmmConfig::default()
            },
            SddmmConfig {
                vector_width: 2,
                ..SddmmConfig::default()
            },
            SddmmConfig {
                threads_per_output_tile: 8,
                ..SddmmConfig::default()
            },
            SddmmConfig {
                block_items_x: 16,
                ..SddmmConfig::default()
            },
            SddmmConfig {
                row_swizzle: true,
                ..SddmmConfig::default()
            },
        ] {
            check(&mask, 48, cfg);
        }
    }

    #[test]
    fn odd_inner_dimension_narrows_vectors() {
        // k = 37 is indivisible by any vector width: kernel must fall back
        // to scalar loads and still be correct.
        let mask = gen::uniform(16, 16, 0.5, 35);
        check(&mask, 37, SddmmConfig::default());
    }

    #[test]
    fn imbalanced_mask_rows() {
        let mask = gen::with_cov(64, 64, 0.8, 1.2, 36);
        check(&mask, 32, SddmmConfig::default());
    }

    #[test]
    fn empty_mask_is_fine() {
        let mask = CsrMatrix::<f32>::empty(8, 8);
        let lhs = Matrix::<f32>::random(8, 16, 1);
        let rhs = Matrix::<f32>::random(8, 16, 2);
        let gpu = Gpu::v100();
        let (d, _) = sddmm(&gpu, &lhs, &rhs, &mask, SddmmConfig::default());
        assert_eq!(d.nnz(), 0);
    }

    #[test]
    fn attention_shaped_mask() {
        let mask = gen::attention_mask(128, 16, 0.95, 37);
        check(&mask, 64, SddmmConfig::heuristic::<f32>(64));
    }

    #[test]
    fn mixed_precision_sddmm() {
        use sparse::Half;
        // The SDDMM kernel is generic over the element type; fp16 storage
        // with fp32 accumulation works the same way as the SpMM's mixed mode.
        let mask = gen::uniform(24, 24, 0.6, 44).convert::<Half>();
        let to_half = |m: &Matrix<f32>| {
            let mut h = Matrix::<Half>::zeros(m.rows(), m.cols());
            for r in 0..m.rows() {
                for c in 0..m.cols() {
                    h.set(r, c, Half::from_f32(m.get(r, c)));
                }
            }
            h
        };
        let lhs32 = Matrix::<f32>::random(24, 32, 45);
        let rhs32 = Matrix::<f32>::random(24, 32, 46);
        let (lhs, rhs) = (to_half(&lhs32), to_half(&rhs32));
        let gpu = Gpu::v100();
        let (d, stats) = sddmm(&gpu, &lhs, &rhs, &mask, SddmmConfig::heuristic::<Half>(32));
        let expect = crate::reference::sddmm(&lhs.to_f32(), &rhs.to_f32(), &mask.convert::<f32>());
        for (got, want) in d.values().iter().zip(expect.values()) {
            assert!((got.to_f32() - want).abs() <= want.abs() * 0.01 + 0.05);
        }
        // Halved element width must reduce DRAM traffic vs the f32 twin.
        let f32_stats = sddmm_profile::<f32>(
            &gpu,
            &mask.convert::<f32>(),
            32,
            SddmmConfig::heuristic::<f32>(32),
        );
        assert!(stats.dram_bytes < f32_stats.dram_bytes);
    }

    #[test]
    fn profile_matches_launch() {
        let mask = gen::uniform(64, 64, 0.75, 38);
        let lhs = Matrix::<f32>::random(64, 64, 1);
        let rhs = Matrix::<f32>::random(64, 64, 2);
        let gpu = Gpu::v100();
        let (_, launch) = sddmm(&gpu, &lhs, &rhs, &mask, SddmmConfig::default());
        let profile = sddmm_profile(&gpu, &mask, 64, SddmmConfig::default());
        assert_eq!(launch.instructions, profile.instructions);
        assert!((launch.time_us - profile.time_us).abs() < 1e-9);
    }

    #[test]
    fn scaled_sddmm_matches_general_reference() {
        // The general form D = (A B^T) ⊙ C from Section IV-B's footnote.
        let mask = gen::uniform(24, 24, 0.6, 40);
        let lhs = Matrix::<f32>::random(24, 32, 41);
        let rhs = Matrix::<f32>::random(24, 32, 42);
        let gpu = Gpu::v100();
        let cfg = SddmmConfig {
            scale_by_mask: true,
            ..SddmmConfig::default()
        };
        let (d, _) = sddmm(&gpu, &lhs, &rhs, &mask, cfg);
        let expect = crate::reference::sddmm_scaled(&lhs, &rhs, &mask);
        for (got, want) in d.values().iter().zip(expect.values()) {
            assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
        // The scaling costs extra instructions.
        let plain = sddmm_profile::<f32>(&gpu, &mask, 32, SddmmConfig::default());
        let scaled = sddmm_profile::<f32>(&gpu, &mask, 32, cfg);
        assert!(scaled.instructions > plain.instructions);
    }

    #[test]
    fn dedup_profile_is_bit_identical() {
        for (m, n, k, sp, swiz) in [
            (64usize, 96usize, 32usize, 0.7, false),
            (128, 128, 128, 0.9, true),
            (100, 76, 40, 0.8, false),
        ] {
            let mask = gen::uniform(m, n, sp, 51);
            let cfg = SddmmConfig {
                row_swizzle: swiz,
                ..SddmmConfig::default()
            };
            let swizzle = if swiz {
                RowSwizzle::by_length_desc(&mask)
            } else {
                RowSwizzle::identity(mask.rows())
            };
            let fast = {
                let kernel = SddmmKernel::<f32>::for_profile(&mask, k, &swizzle, cfg);
                Gpu::v100().profile(&kernel)
            };
            let brute = {
                let kernel = SddmmKernel::<f32>::for_profile(&mask, k, &swizzle, cfg);
                Gpu::v100().with_block_dedup(false).profile(&kernel)
            };
            assert_eq!(fast, brute, "{m}x{n} k={k}");
        }
    }

    #[test]
    fn cached_profile_replays_identical_stats() {
        let mask = gen::uniform(48, 40, 0.7, 52);
        let gpu = Gpu::v100();
        let cache = gpu_sim::LaunchCache::new();
        let cfg = SddmmConfig::default();
        let (first, hit1) = sddmm_profile_cached(&gpu, &cache, &mask, 64, cfg);
        let (second, hit2) = sddmm_profile_cached(&gpu, &cache, &mask, 64, cfg);
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(first, second);
        assert_eq!(first, sddmm_profile(&gpu, &mask, 64, cfg));
        let (_, hit3) = sddmm_profile_cached(&gpu, &cache, &mask, 32, cfg);
        assert!(!hit3, "different k must be a different key");
    }

    #[test]
    fn equal_dot_lengths_mean_balance_is_inherent() {
        // Section VI-C: "load balancing in SDDMM is less critical due to the
        // fact that all dot-products to be computed are of equal length."
        // Even a high-CoV mask keeps schedule balance reasonable.
        let mask = gen::with_cov(2048, 2048, 0.9, 1.0, 39);
        let gpu = Gpu::v100();
        let stats = sddmm_profile(&gpu, &mask, 256, SddmmConfig::default());
        assert!(stats.balance > 0.3, "balance {}", stats.balance);
    }
}
