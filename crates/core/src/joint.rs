//! Joint activation x weight sparsity: the warp-uniform pattern-skipping
//! SpMM variant.
//!
//! The Sputnik SpMM exploits sparsity in the *weight* operand A only; the
//! dense activation operand B is loaded unconditionally, one strip per
//! stored nonzero. When activations are themselves sparse (ReLU networks
//! zero most of B at inference time), every strip whose source tile of B is
//! all-zero contributes nothing — but the dense kernel still pays its load
//! and FMA.
//!
//! [`JointSpmmKernel`] consults a precomputed [`sparse::PatternLut`] — a
//! bitmap of 8x32 (fine) or 64x32 (coarse) zero blocks of B — and skips the
//! B-load + FMA for any stored nonzero whose target tile the LUT marks
//! dead. The skip is *warp-uniform*: the kernel's column strip is
//! constrained to lie inside one 32-column LUT tile (`block_items_x` must
//! divide 32), so every lane of a subwarp probes the same LUT bit and the
//! whole warp takes the same branch — one amortized probe per strip, no
//! divergence penalty. This is the classic joint-sparsity design: pattern
//! lookups cost one bit test where the saved work is a global load plus
//! `vector_width` FMAs per lane.
//!
//! ## Bit identity, not approximate equality
//!
//! Skipping is sound at the *bit* level, not merely numerically:
//!
//! * A tile is marked dead only if every element's f32 bits are exactly
//!   `+0.0` ([`sparse::PatternLut::build`]; `-0.0` keeps a tile live).
//! * The dense kernel's accumulators start at `+0.0` and an fma chain
//!   seeded at `+0.0` can never produce `-0.0` (a round-to-nearest sum is
//!   `-0.0` only when both addends are `-0.0`), so for a dead tile every
//!   skipped `fma(val, +0.0, acc)` would have returned `acc` bit-for-bit.
//! * Surviving elements replay the *exact* per-element `mul_add` order of
//!   [`crate::spmm::SpmmKernel`]: both kernels resolve their iteration
//!   space through the shared [`crate::spmm::resolve_subwarp`].
//!
//! Therefore `joint_spmm` output is bit-identical to `spmm` output on the
//! same operands — asserted per-element in the tests and in the `jointwall`
//! bench gate, never within a tolerance.
//!
//! ## Cost model
//!
//! The A-side of the kernel is unchanged: values and indices are staged to
//! shared memory in full (the indices must be *read* to be probed), and the
//! warp-divergence model is the dense kernel's. Per strip the model adds
//! one gather of the distinct LUT words touched plus one bit-test
//! instruction per position, and then scales the inner-loop body — B-load
//! instructions, index-scaling, FMAs — by the strip's *union-live* count:
//! a position is executed iff at least one subwarp in the warp is live
//! there (dead positions are skipped warp-uniformly; a position where any
//! subwarp survives costs the whole warp an instruction slot, which is
//! exactly the lockstep-execution price the warp-uniform design accepts).
//! Per-subwarp B traffic and useful FLOPs count only that subwarp's own
//! live positions — a predicated-off lane moves no sectors.

use crate::config::SpmmConfig;
use crate::error::SputnikError;
use crate::roma::{ROMA_MASK_INSTRS, ROMA_PRELUDE_INSTRS};
use crate::spmm::{
    dense_strip_sectors, effective_vw_a, gather_row_addrs, operand_fingerprint, require_finite,
    resolve_subwarp, validate_spmm, SubwarpWork, BUF_A_INDICES, BUF_A_OFFSETS, BUF_A_VALUES, BUF_B,
    BUF_C, BUF_SWIZZLE, MAX_BLOCK_SUBWARPS,
};
use gpu_sim::{
    AccessBound, AccessPattern, AlignmentFacts, BarrierFacts, BlockContext, BufferBound, BufferId,
    BufferSpec, Dim3, Fingerprint, Gpu, Kernel, LaunchCache, LaunchKey, LaunchStats, SmemScope,
    StageBound, StaticFacts, SyncUnsafeSlice, VectorClass,
};
use sparse::{CsrMatrix, Matrix, PatternLut, RowSwizzle, Scalar};

/// Buffer identity of the pattern LUT (the dense-kernel slots 0..=6 keep
/// their meanings).
pub const BUF_LUT: BufferId = BufferId(7);

/// The joint-sparsity SpMM kernel. Construct via [`JointSpmmKernel::try_new`]
/// (functional) or [`JointSpmmKernel::for_profile`] (cost model only), or
/// use the [`joint_spmm`] / [`joint_spmm_profile`] wrappers.
pub struct JointSpmmKernel<'a, T: Scalar> {
    a: &'a CsrMatrix<T>,
    b: Option<&'a Matrix<T>>,
    out: Option<SyncUnsafeSlice<'a, T>>,
    swizzle: &'a RowSwizzle,
    lut: &'a PatternLut,
    cfg: SpmmConfig,
    n: usize,
}

/// Liveness of one strip of the main loop, for one warp.
struct StripLiveness {
    /// Strip length (`block_items_k`, or the residue).
    len: usize,
    /// Positions where at least one in-range subwarp is LUT-live — the
    /// warp-uniform execution count for the strip's inner body.
    union_live: u64,
    /// Distinct LUT word byte-addresses probed this strip (sorted).
    probe_addrs: Vec<u64>,
}

/// Per-warp liveness summary shared by the cost trace and the structural
/// signature, so both derive from identical inputs by construction.
struct WarpLiveness {
    strips: Vec<StripLiveness>,
    /// Per subwarp: (live positions in `[0, total)`,
    /// live positions in `[prefix, total)` = useful nonzeros).
    per_sub: Vec<(u64, u64)>,
}

impl<'a, T: Scalar> JointSpmmKernel<'a, T> {
    /// Validation shared by the functional and profile constructors, layered
    /// on the dense kernel's [`validate_spmm`].
    fn validate_joint(
        a: &CsrMatrix<T>,
        swizzle: &RowSwizzle,
        lut: &PatternLut,
        cfg: &SpmmConfig,
        n: usize,
    ) -> Result<(), SputnikError> {
        validate_spmm(a, swizzle, cfg)?;
        if cfg.fused_bias_relu {
            return Err(SputnikError::IllegalConfig {
                reason: "joint-sparsity SpMM does not support the fused bias+ReLU epilogue".into(),
            });
        }
        if !32u32.is_multiple_of(cfg.block_items_x) {
            return Err(SputnikError::IllegalConfig {
                reason: format!(
                    "warp-uniform probing requires block_items_x ({}) to divide the LUT's \
                     32-column tile: every output strip must lie inside one pattern tile",
                    cfg.block_items_x
                ),
            });
        }
        if lut.rows() != a.cols() || lut.cols() != n {
            return Err(SputnikError::ShapeMismatch {
                expected: format!("pattern LUT over a {}x{} dense operand", a.cols(), n),
                found: format!("{}x{}", lut.rows(), lut.cols()),
                context: "joint spmm pattern LUT",
            });
        }
        Ok(())
    }

    /// Fallible functional constructor.
    pub fn try_new(
        a: &'a CsrMatrix<T>,
        b: &'a Matrix<T>,
        out: &'a mut Matrix<T>,
        swizzle: &'a RowSwizzle,
        lut: &'a PatternLut,
        cfg: SpmmConfig,
    ) -> Result<Self, SputnikError> {
        if a.cols() != b.rows() {
            return Err(SputnikError::ShapeMismatch {
                expected: format!("B with {} rows", a.cols()),
                found: format!("{}x{}", b.rows(), b.cols()),
                context: "joint spmm inner dimension",
            });
        }
        if out.rows() != a.rows() || out.cols() != b.cols() {
            return Err(SputnikError::ShapeMismatch {
                expected: format!("{}x{}", a.rows(), b.cols()),
                found: format!("{}x{}", out.rows(), out.cols()),
                context: "joint spmm output",
            });
        }
        if b.layout() != sparse::Layout::RowMajor {
            return Err(SputnikError::IllegalConfig {
                reason: "Sputnik uses row-major dense operands".into(),
            });
        }
        let n = b.cols();
        Self::validate_joint(a, swizzle, lut, &cfg, n)?;
        let out = SyncUnsafeSlice::new(out.as_mut_slice());
        Ok(Self {
            a,
            b: Some(b),
            out: Some(out),
            swizzle,
            lut,
            cfg,
            n,
        })
    }

    /// A cost-model-only kernel: needs only the sparse topology and the LUT,
    /// so it can profile problems whose B/C would not fit host memory.
    pub fn for_profile(
        a: &'a CsrMatrix<T>,
        n: usize,
        swizzle: &'a RowSwizzle,
        lut: &'a PatternLut,
        cfg: SpmmConfig,
    ) -> Result<Self, SputnikError> {
        Self::validate_joint(a, swizzle, lut, &cfg, n)?;
        Ok(Self {
            a,
            b: None,
            out: None,
            swizzle,
            lut,
            cfg,
            n,
        })
    }

    /// The launch name for a configuration + granularity, without building a
    /// kernel — lets cache lookups skip swizzle construction.
    pub(crate) fn launch_name(cfg: &SpmmConfig, lut: &PatternLut) -> String {
        format!(
            "sputnik_joint_spmm_{}_{}_{}",
            T::TAG,
            cfg.tag(),
            lut.granularity().tag()
        )
    }

    fn vw_a(&self) -> u32 {
        effective_vw_a(&self.cfg)
    }

    fn b_load_sectors(&self, n_off: usize, tile_w: usize) -> u64 {
        dense_strip_sectors(T::BYTES, self.n, n_off, tile_w)
    }

    fn subwarp_work(&self, m_idx: usize) -> SubwarpWork {
        resolve_subwarp(self.a, self.swizzle, &self.cfg, m_idx)
    }

    /// Liveness of every strip and subwarp of one warp, for the column strip
    /// at `n_off`. Liveness is a function of the *stored indices* and the
    /// LUT only — never of values — so ROMA prefix positions (whose values
    /// the functional path masks to zero) probe like any other position and
    /// the result is identical between functional and profile kernels.
    fn warp_liveness(&self, subs: &[SubwarpWork], n_off: usize) -> WarpLiveness {
        let bik = self.cfg.block_items_k as usize;
        let nt = self.lut.ntile_of(n_off);
        let indices = self.a.col_indices();
        let max_total = subs.iter().map(|s| s.total).max().unwrap_or(0);
        let mut per_sub = vec![(0u64, 0u64); subs.len()];
        let mut strips = Vec::with_capacity(max_total.div_ceil(bik.max(1)));
        let mut base = 0usize;
        while base < max_total {
            let len = bik.min(max_total - base);
            let mut union_live = 0u64;
            let mut probe_addrs = Vec::new();
            for p in base..base + len {
                let mut any_live = false;
                for (s, sub) in subs.iter().enumerate() {
                    if sub.row == usize::MAX || p >= sub.total {
                        continue;
                    }
                    let col = indices[sub.aligned_offset + p] as usize;
                    let kt = self.lut.ktile_of(col);
                    probe_addrs.push(self.lut.word_addr(kt, nt));
                    if self.lut.is_live(kt, nt) {
                        any_live = true;
                        per_sub[s].0 += 1;
                        if p >= sub.prefix {
                            per_sub[s].1 += 1;
                        }
                    }
                }
                union_live += u64::from(any_live);
            }
            probe_addrs.sort_unstable();
            probe_addrs.dedup();
            strips.push(StripLiveness {
                len,
                union_live,
                probe_addrs,
            });
            base += len;
        }
        WarpLiveness { strips, per_sub }
    }

    /// Functional computation for one subwarp: the dense kernel's numerics
    /// and control flow, minus the elements whose B tile the LUT proves
    /// dead. Skipped fmas multiply by exact `+0.0`, so the surviving chain
    /// is bit-identical to the dense kernel's (see the module docs).
    fn compute_subwarp(&self, sub: &SubwarpWork, n_off: usize, tile_w: usize) {
        let mut acc = gpu_sim::arena::ScratchF32::take(tile_w);
        let values = self.a.values();
        let indices = self.a.col_indices();
        let (Some(b), Some(out)) = (self.b, self.out.as_ref()) else {
            return;
        };
        let b = b.as_slice();
        for j in 0..sub.total {
            let pos = sub.aligned_offset + j;
            if j < sub.prefix {
                continue; // ROMA masking: the prefix belongs to the previous row.
            }
            let val = values[pos].to_f32();
            if val == 0.0 {
                continue;
            }
            let col = indices[pos] as usize;
            if !self.lut.live_for(col, n_off) {
                continue; // dead tile: every skipped fma is fma(val, +0.0, acc) == acc
            }
            let brow = &b[col * self.n + n_off..col * self.n + n_off + tile_w];
            gpu_sim::lanes::fma_axpy(&mut acc, val, brow, |bv| bv.to_f32());
        }
        for (x, &v) in acc.iter().enumerate() {
            unsafe { out.write(sub.row * self.n + n_off + x, T::from_f32(v)) };
        }
    }

    /// Cost of one warp's execution: the dense kernel's trace with the
    /// inner-loop body scaled by each strip's union-live count, plus the
    /// per-strip LUT probe.
    fn cost_warp(&self, ctx: &mut BlockContext, subs: &[SubwarpWork], n_off: usize, tile_w: usize) {
        let cfg = &self.cfg;
        let bik = cfg.block_items_k as usize;
        let threads_x = cfg.threads_x();
        let vw = cfg.vector_width;
        let vw_a = self.vw_a();
        let eb = T::BYTES;
        let ib = cfg.index_width.bytes();

        // ---- Prelude (identical to the dense kernel) ----------------------
        ctx.misc(6);
        if cfg.row_swizzle {
            let live = subs.len().min(self.a.rows()) as u32;
            if live > 0 {
                ctx.ld_global(BUF_SWIZZLE, 0, live, 1, 4);
            }
        }
        let mut offset_addrs = [0u64; MAX_BLOCK_SUBWARPS];
        let n_offset_addrs = gather_row_addrs(subs, 4, &mut offset_addrs);
        if n_offset_addrs > 0 {
            ctx.ld_global_gather(BUF_A_OFFSETS, &offset_addrs[..n_offset_addrs], 8);
        }
        ctx.misc(2);
        if cfg.roma && vw > 1 {
            ctx.misc(ROMA_PRELUDE_INSTRS);
        }

        // ---- Warp divergence stall (identical: skipping is warp-uniform,
        // so it changes which positions execute, never which lanes) --------
        const DIVERGENCE_STALL_CYCLES_PER_SLOT: u64 = 14;
        let max_total = subs.iter().map(|s| s.total).max().unwrap_or(0);
        if subs.len() > 1 {
            let wasted: u64 = subs
                .iter()
                .filter(|s| s.row != usize::MAX)
                .map(|s| (max_total - s.total) as u64)
                .sum();
            ctx.cost.stall_cycles += wasted * DIVERGENCE_STALL_CYCLES_PER_SLOT / subs.len() as u64;
        }

        // ---- Main loop ----------------------------------------------------
        let lv = self.warp_liveness(subs, n_off);
        let smem_broadcast_loads = 2 * (bik as u64).div_ceil(4);
        for (si, strip) in lv.strips.iter().enumerate() {
            if strip.len == bik {
                // A staging: full strip of values + indices, unconditionally
                // (the indices must be staged to be probed).
                let a_load_instrs =
                    gpu_sim::memory::vector_instr_count(bik as u64, threads_x, vw_a);
                for _ in 0..a_load_instrs {
                    ctx.cost.ld_global_instrs += 2;
                    ctx.smem_store(2, 0, SmemScope::Warp);
                }
                ctx.cost.shared_bytes += bik as u64 * (eb + ib) as u64;
                if cfg.index_prescale {
                    ctx.misc((bik as u64).div_ceil(threads_x as u64));
                }
                // Broadcast readback is also full-strip: probing consumes
                // every staged index even when the element is then skipped.
                for _ in 0..smem_broadcast_loads {
                    ctx.ld_shared(1, 4, eb.max(ib), 1);
                }
                // The warp-uniform probe: gather the strip's distinct LUT
                // words (32 lanes per gather instruction), one bit-test +
                // skip predicate per position.
                for lanes in strip.probe_addrs.chunks(32) {
                    ctx.ld_global_gather(BUF_LUT, lanes, 8);
                }
                ctx.misc(strip.len as u64);
                // Inner body only for union-live positions.
                ctx.cost.ld_global_instrs += strip.union_live;
                if !cfg.index_prescale {
                    ctx.misc(strip.union_live);
                }
                ctx.cost.fma_instrs += strip.union_live * vw as u64;
                ctx.misc(4);
                if si == 0 && cfg.roma && vw > 1 {
                    ctx.misc(1);
                    ctx.smem_store(2, 0, SmemScope::Warp);
                    let _ = ROMA_MASK_INSTRS;
                }
            } else {
                // ---- Residue strip ---------------------------------------
                let residue = strip.len;
                for lanes in strip.probe_addrs.chunks(32) {
                    ctx.ld_global_gather(BUF_LUT, lanes, 8);
                }
                ctx.misc(residue as u64);
                if cfg.residue_unroll {
                    // The unrolled path works in 4-wide chunks, so surviving
                    // work rounds up to a multiple of 4.
                    ctx.smem_store(2, 0, SmemScope::Warp);
                    let rounded = strip.union_live.div_ceil(4) * 4;
                    let a_instrs =
                        gpu_sim::memory::vector_instr_count(residue as u64, threads_x, vw_a);
                    ctx.cost.ld_global_instrs += 2 * a_instrs;
                    ctx.smem_store(2 * a_instrs, 0, SmemScope::Warp);
                    ctx.cost.shared_bytes += residue as u64 * (eb + ib) as u64;
                    for _ in 0..(2 * (residue as u64).div_ceil(4)) {
                        ctx.ld_shared(1, 4, eb.max(ib), 1);
                    }
                    ctx.cost.ld_global_instrs += rounded;
                    ctx.cost.fma_instrs += rounded * vw as u64;
                    if cfg.index_prescale {
                        ctx.misc((residue as u64).div_ceil(threads_x as u64));
                    } else {
                        ctx.misc(rounded);
                    }
                    ctx.misc(4);
                } else {
                    let a_instrs =
                        gpu_sim::memory::vector_instr_count(residue as u64, threads_x, 1);
                    ctx.cost.ld_global_instrs += 2 * a_instrs;
                    ctx.smem_store(2 * a_instrs, 0, SmemScope::Warp);
                    ctx.cost.shared_bytes += residue as u64 * (eb + ib) as u64;
                    for _ in 0..(2 * residue as u64) {
                        ctx.ld_shared(1, 1, eb.max(ib), 1);
                    }
                    ctx.cost.ld_global_instrs += strip.union_live;
                    ctx.cost.fma_instrs += strip.union_live * vw as u64;
                    ctx.misc(5 * residue as u64);
                    ctx.cost.stall_cycles += 4 * residue as u64;
                }
            }
        }

        // ---- Per-subwarp memory traffic ----------------------------------
        let b_sectors_per_load = self.b_load_sectors(n_off, tile_w);
        for (s, sub) in subs.iter().enumerate() {
            if sub.row == usize::MAX || sub.total == 0 {
                continue;
            }
            // A values + indices: the full strip is always staged.
            ctx.ld_global_trace(
                BUF_A_VALUES,
                sub.aligned_offset as u64 * eb as u64,
                sub.total as u64 * eb as u64,
            );
            ctx.ld_global_trace(
                BUF_A_INDICES,
                sub.aligned_offset as u64 * ib as u64,
                sub.total as u64 * ib as u64,
            );
            // B strips: only this subwarp's live positions move sectors — a
            // predicated-off lane issues no memory transaction.
            let (live, live_nnz) = lv.per_sub[s];
            ctx.cost.gmem[BUF_B.0 as usize].ld_sectors += live * b_sectors_per_load;
            // Useful FLOPs: live true nonzeros only (skipped elements would
            // have contributed exact zeros).
            ctx.cost.flops += 2 * live_nnz * tile_w as u64;
        }

        // ---- Output store (identical: every tile is written) --------------
        let store_vw = if self.n.is_multiple_of(vw as usize)
            && n_off.is_multiple_of(vw as usize)
            && tile_w.is_multiple_of(vw as usize)
        {
            vw
        } else {
            1
        };
        let store_instrs = gpu_sim::memory::vector_instr_count(tile_w as u64, threads_x, store_vw);
        ctx.cost.st_global_instrs += store_instrs;
        for sub in subs {
            if sub.row == usize::MAX {
                continue;
            }
            let addr = (sub.row * self.n + n_off) as u64 * eb as u64;
            ctx.st_global_trace(BUF_C, addr, tile_w as u64 * eb as u64);
        }
    }
}

impl<T: Scalar> Kernel for JointSpmmKernel<'_, T> {
    fn name(&self) -> String {
        Self::launch_name(&self.cfg, self.lut)
    }

    fn grid(&self) -> Dim3 {
        Dim3::xy(
            (self.n as u32).div_ceil(self.cfg.block_items_x),
            (self.a.rows() as u32).div_ceil(self.cfg.block_items_y),
        )
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::xy(self.cfg.threads_x(), self.cfg.block_items_y)
    }

    fn shared_mem_bytes(&self) -> u32 {
        // A staging is unchanged; LUT probes read through global/L1.
        self.cfg.smem_bytes::<T>()
    }

    fn regs_per_thread(&self) -> u32 {
        // One extra register pair holds the strip's probe word + predicate.
        self.cfg.regs_per_thread() + 2
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        let nnz = self.a.nnz() as u64;
        let mut bufs = vec![
            BufferSpec {
                id: BUF_A_VALUES,
                name: "a_values",
                footprint_bytes: nnz * T::BYTES as u64,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_A_INDICES,
                name: "a_indices",
                footprint_bytes: nnz * self.cfg.index_width.bytes() as u64,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_A_OFFSETS,
                name: "a_row_offsets",
                footprint_bytes: (self.a.rows() as u64 + 1) * 4,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_B,
                name: "b",
                footprint_bytes: (self.a.cols() * self.n) as u64 * T::BYTES as u64,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_C,
                name: "c",
                footprint_bytes: (self.a.rows() * self.n) as u64 * T::BYTES as u64,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_LUT,
                name: "pattern_lut",
                footprint_bytes: self.lut.words().len() as u64 * 8,
                pattern: AccessPattern::SharedReuse,
            },
        ];
        if self.cfg.row_swizzle {
            bufs.push(BufferSpec {
                id: BUF_SWIZZLE,
                name: "row_indices",
                footprint_bytes: self.a.rows() as u64 * 4,
                pattern: AccessPattern::SharedReuse,
            });
        }
        bufs
    }

    /// Structural cost signature: the dense kernel's inputs plus everything
    /// the skip model adds — per-strip union-live counts and probe-gather
    /// shapes, per-subwarp live totals. Both the signature and `cost_warp`
    /// derive these from the same [`JointSpmmKernel::warp_liveness`] walk,
    /// so signature equality implies bit-identical recorded costs.
    fn block_signature(&self, block: Dim3) -> Option<u64> {
        let cfg = &self.cfg;
        let eb = T::BYTES as u64;
        let ib = cfg.index_width.bytes() as u64;
        let n_off = block.x as usize * cfg.block_items_x as usize;
        let tile_w = cfg.block_items_x.min(self.n.saturating_sub(n_off) as u32) as usize;
        let mut fp = Fingerprint::new();
        fp.write_u64(tile_w as u64);
        if tile_w == 0 {
            return Some(fp.finish());
        }
        fp.write_u64(self.b_load_sectors(n_off, tile_w));
        let store_vw = self.n.is_multiple_of(cfg.vector_width as usize)
            && n_off.is_multiple_of(cfg.vector_width as usize)
            && tile_w.is_multiple_of(cfg.vector_width as usize);
        fp.write_u64(store_vw as u64);

        let biy = cfg.block_items_y as usize;
        let base_m = block.y as usize * biy;
        let mut subs_buf = [SubwarpWork::EMPTY; MAX_BLOCK_SUBWARPS];
        for (s, slot) in subs_buf.iter_mut().take(biy).enumerate() {
            *slot = self.subwarp_work(base_m + s);
        }
        let subs = &subs_buf[..biy];
        for chunk in subs.chunks(cfg.subwarps_per_warp() as usize) {
            let mut gather = [0u64; MAX_BLOCK_SUBWARPS];
            let n_gather = gather_row_addrs(chunk, 4, &mut gather);
            fp.write_u64(gpu_sim::memory::sectors_gather(&gather[..n_gather], 8));
            let lv = self.warp_liveness(chunk, n_off);
            fp.write_u64(lv.strips.len() as u64);
            for strip in &lv.strips {
                fp.write_u64(strip.len as u64);
                fp.write_u64(strip.union_live);
                fp.write_u64(strip.probe_addrs.len() as u64);
                for lanes in strip.probe_addrs.chunks(32) {
                    fp.write_u64(gpu_sim::memory::sectors_gather(lanes, 8));
                }
            }
            for (s, sub) in chunk.iter().enumerate() {
                if sub.row == usize::MAX {
                    fp.write_u64(u64::MAX);
                    continue;
                }
                fp.write_u64(sub.total as u64);
                fp.write_u64(sub.nnz as u64);
                fp.write_u64(sub.aligned_offset as u64 * eb % 32);
                fp.write_u64(sub.aligned_offset as u64 * ib % 32);
                fp.write_u64((sub.row * self.n + n_off) as u64 * eb % 32);
                let (live, live_nnz) = lv.per_sub[s];
                fp.write_u64(live);
                fp.write_u64(live_nnz);
            }
        }
        Some(fp.finish())
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        let cfg = &self.cfg;
        let n_off = block.x as usize * cfg.block_items_x as usize;
        let tile_w = cfg.block_items_x.min((self.n - n_off) as u32) as usize;
        if tile_w == 0 {
            return;
        }
        let biy = cfg.block_items_y as usize;
        let base_m = block.y as usize * biy;
        let mut subs_buf = [SubwarpWork::EMPTY; MAX_BLOCK_SUBWARPS];
        for (s, slot) in subs_buf.iter_mut().take(biy).enumerate() {
            *slot = self.subwarp_work(base_m + s);
        }
        let subs = &subs_buf[..biy];

        if ctx.recording() {
            let spw = cfg.subwarps_per_warp() as usize;
            for chunk in subs.chunks(spw) {
                self.cost_warp(ctx, chunk, n_off, tile_w);
            }
        }

        if ctx.functional() && self.b.is_some() {
            for sub in subs {
                if sub.row != usize::MAX {
                    self.compute_subwarp(sub, n_off, tile_w);
                }
            }
        }
    }

    /// Static facts: the dense kernel's bounds (minus bias) plus the LUT.
    ///
    /// LUT soundness: a probe reads the 8-byte word at
    /// `((kt * ntiles + nt) / 64) * 8`. Validated CSR indices give
    /// `kt < ktiles` and in-range strips give `nt < ntiles`, so the furthest
    /// byte is at most `words.len() * 8` — the exact allocation.
    fn static_facts(&self) -> StaticFacts {
        let cfg = &self.cfg;
        let eb = T::BYTES as u64;
        let ib = cfg.index_width.bytes() as u64;
        let rows = self.a.rows() as u64;
        let cols = self.a.cols() as u64;
        let nnz = self.a.nnz() as u64;
        let n = self.n as u64;

        let mut bounds = vec![
            BufferBound {
                slot: BUF_A_VALUES.0,
                bound: AccessBound::Extent(nnz * eb),
            },
            BufferBound {
                slot: BUF_A_INDICES.0,
                bound: AccessBound::Extent(nnz * ib),
            },
            BufferBound {
                slot: BUF_A_OFFSETS.0,
                bound: AccessBound::Extent((rows + 1) * 4),
            },
            BufferBound {
                slot: BUF_B.0,
                bound: AccessBound::Extent(cols * n * eb),
            },
            BufferBound {
                slot: BUF_C.0,
                bound: AccessBound::Extent(rows * n * eb),
            },
            BufferBound {
                slot: BUF_LUT.0,
                bound: AccessBound::Extent(self.lut.words().len() as u64 * 8),
            },
        ];
        if cfg.row_swizzle {
            let chunk = u64::from(cfg.subwarps_per_warp().min(cfg.block_items_y)).min(rows);
            bounds.push(BufferBound {
                slot: BUF_SWIZZLE.0,
                bound: AccessBound::Extent(chunk * 4),
            });
        }

        let vw = cfg.vector_width;
        let alignment = if vw <= 1 || self.vw_a() == 1 {
            AlignmentFacts::ScalarOnly
        } else if cfg.assume_aligned {
            let worst = (0..self.a.rows())
                .filter(|&r| self.a.row_len(r) > 0)
                .map(|r| (self.a.row_offsets()[r] as u64 % u64::from(vw)) * eb)
                .max()
                .unwrap_or(0);
            AlignmentFacts::Residues(vec![VectorClass {
                slot: BUF_A_VALUES.0,
                vec_width: vw,
                elem_bytes: T::BYTES,
                worst_residue: worst,
            }])
        } else {
            AlignmentFacts::Residues(vec![VectorClass {
                slot: BUF_A_VALUES.0,
                vec_width: vw,
                elem_bytes: T::BYTES,
                worst_residue: 0,
            }])
        };

        StaticFacts {
            bounds: Some(bounds),
            alignment,
            barrier: BarrierFacts::WarpSynchronous,
            stage: StageBound::Bytes(0),
        }
    }

    fn poison_output(&self, seed: u64) {
        if let Some(out) = self.out.as_ref() {
            let len = out.len();
            if len == 0 {
                return;
            }
            for i in 0..3u64 {
                let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z ^= z >> 31;
                unsafe { out.write(z as usize % len, T::from_f32(f32::NAN)) };
            }
        }
    }
}

/// A joint-legal variant of the paper's kernel-selection heuristic: the
/// warp-uniform probe requires the column tile to divide the LUT's 32-column
/// tile, so the 64-wide tile the dense heuristic picks for large `n` is
/// clamped back to 32.
pub fn joint_heuristic<T: Scalar>(n: usize) -> SpmmConfig {
    let mut cfg = SpmmConfig::heuristic::<T>(n);
    if !32u32.is_multiple_of(cfg.block_items_x) {
        cfg.block_items_x = 32;
    }
    cfg
}

/// The launch-cache fingerprint for a joint problem: the dense-kernel
/// operand fingerprint (topology + `n`) mixed with the LUT's content
/// fingerprint — two LUTs over different activations must never collide.
fn joint_fingerprint<T: Scalar>(a: &CsrMatrix<T>, n: usize, lut: &PatternLut) -> u64 {
    let mut fp = Fingerprint::new();
    fp.write_u64(operand_fingerprint(a, n));
    fp.write_u64(lut.fingerprint());
    fp.finish()
}

/// Bump the joint-skip observability counters for one launch: LUT probes
/// issued / probes that hit dead tiles, into the global metrics registry
/// and (when tracing is on) the chrome-trace counter track.
fn record_skip_metrics<T: Scalar>(a: &CsrMatrix<T>, lut: &PatternLut) {
    let (total, dead) = lut.probe_stats(a);
    gpu_sim::metrics::global()
        .incr_many(&[("joint_tiles_total", total), ("joint_tiles_skipped", dead)]);
    if gpu_sim::trace::enabled() {
        gpu_sim::trace::counter("joint", "joint", "joint_tiles_total", total);
        gpu_sim::trace::counter("joint", "joint", "joint_tiles_skipped", dead);
    }
}

/// Run joint-sparsity SpMM on the simulated GPU. Panics on invalid inputs
/// or device faults; [`try_joint_spmm`] is the recoverable equivalent.
pub fn joint_spmm<T: Scalar>(
    gpu: &Gpu,
    a: &CsrMatrix<T>,
    b: &Matrix<T>,
    lut: &PatternLut,
    cfg: SpmmConfig,
) -> (Matrix<T>, LaunchStats) {
    try_joint_spmm(gpu, a, b, lut, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible joint SpMM: validates shapes, config legality (including the
/// warp-uniform tile constraint), and operand finiteness, gates the launch
/// on the static auditor, and launches functionally. Returns `(C, stats)`;
/// the output is bit-identical to [`crate::try_spmm`] on the same operands.
pub fn try_joint_spmm<T: Scalar>(
    gpu: &Gpu,
    a: &CsrMatrix<T>,
    b: &Matrix<T>,
    lut: &PatternLut,
    cfg: SpmmConfig,
) -> Result<(Matrix<T>, LaunchStats), SputnikError> {
    require_finite("a", a.values())?;
    require_finite("b", b.as_slice())?;
    let swizzle = if cfg.row_swizzle {
        RowSwizzle::by_length_desc(a)
    } else {
        RowSwizzle::identity(a.rows())
    };
    let mut out = Matrix::<T>::zeros(a.rows(), b.cols());
    let stats = {
        let kernel = JointSpmmKernel::try_new(a, b, &mut out, &swizzle, lut, cfg)?;
        crate::dispatch::audit_launch(gpu, &kernel)?;
        gpu.try_launch(&kernel)?
    };
    record_skip_metrics(a, lut);
    Ok((out, stats))
}

/// Profile joint SpMM (cost model only): needs the sparse topology and the
/// LUT, never the dense activations themselves.
pub fn joint_spmm_profile<T: Scalar>(
    gpu: &Gpu,
    a: &CsrMatrix<T>,
    b_rows: usize,
    n: usize,
    lut: &PatternLut,
    cfg: SpmmConfig,
) -> LaunchStats {
    assert_eq!(a.cols(), b_rows, "inner dimensions must agree");
    let swizzle = if cfg.row_swizzle {
        RowSwizzle::by_length_desc(a)
    } else {
        RowSwizzle::identity(a.rows())
    };
    let kernel = JointSpmmKernel::<T>::for_profile(a, n, &swizzle, lut, cfg)
        .unwrap_or_else(|e| panic!("{e}"));
    let stats = gpu.profile(&kernel);
    record_skip_metrics(a, lut);
    stats
}

/// [`joint_spmm_profile`] through a cross-launch [`LaunchCache`]: returns
/// the stats plus whether they were served from the cache. The key mixes
/// the sparse-topology fingerprint with the LUT fingerprint — the skip
/// pattern is a first-class problem dimension.
pub fn joint_spmm_profile_cached<T: Scalar>(
    gpu: &Gpu,
    cache: &LaunchCache,
    a: &CsrMatrix<T>,
    b_rows: usize,
    n: usize,
    lut: &PatternLut,
    cfg: SpmmConfig,
) -> (LaunchStats, bool) {
    assert_eq!(a.cols(), b_rows, "inner dimensions must agree");
    if gpu.fault_plan().is_some() {
        return (joint_spmm_profile(gpu, a, b_rows, n, lut, cfg), false);
    }
    let key = LaunchKey {
        kernel: JointSpmmKernel::<T>::launch_name(&cfg, lut),
        fingerprint: joint_fingerprint(a, n, lut),
        device: gpu.device().name.clone(),
        arch: gpu.device().arch_fingerprint(),
    };
    if let Some(stats) = cache.lookup(&key) {
        gpu.note_cache_hit(&stats);
        return (stats, true);
    }
    let stats = joint_spmm_profile(gpu, a, b_rows, n, lut, cfg);
    cache.insert(key, stats.clone());
    (stats, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmm::{spmm, spmm_profile};
    use sparse::{gen, PatternGranularity};

    /// Build a weights/activations pair with real joint structure.
    fn problem(m: usize, k: usize, n: usize, zero_frac: f64) -> (CsrMatrix<f32>, Matrix<f32>) {
        let a = gen::uniform(m, k, 0.7, 11);
        let b = gen::activations(k, n, zero_frac, 23);
        (a, b)
    }

    fn assert_bit_identical(lhs: &Matrix<f32>, rhs: &Matrix<f32>, tag: &str) {
        assert_eq!(lhs.rows(), rhs.rows());
        assert_eq!(lhs.cols(), rhs.cols());
        for (i, (x, y)) in lhs.as_slice().iter().zip(rhs.as_slice()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{tag}: element {i} differs: {x} vs {y}"
            );
        }
    }

    #[test]
    fn bit_identical_to_dense_kernel_across_configs() {
        let (a, b) = problem(48, 96, 64, 0.7);
        let gpu = Gpu::v100();
        let base = joint_heuristic::<f32>(64);
        let variants = [
            base,
            SpmmConfig {
                row_swizzle: false,
                ..base
            },
            SpmmConfig {
                vector_width: 1,
                roma: false,
                ..base
            },
            SpmmConfig {
                residue_unroll: false,
                ..base
            },
            SpmmConfig {
                index_prescale: false,
                ..base
            },
            SpmmConfig {
                vector_width: 2,
                ..base
            },
            SpmmConfig {
                block_items_y: 1,
                ..base
            },
            SpmmConfig {
                block_items_y: 8,
                ..base
            },
            SpmmConfig {
                block_items_x: 8,
                vector_width: 2,
                ..base
            },
            SpmmConfig {
                block_items_x: 16,
                ..base
            },
        ];
        for g in [PatternGranularity::Fine, PatternGranularity::Coarse] {
            let lut = PatternLut::build(&b, g);
            assert!(
                lut.tiles_dead() > 0,
                "test needs real skips to be meaningful"
            );
            for cfg in variants {
                let (dense, _) = spmm(&gpu, &a, &b, cfg);
                let (joint, stats) = joint_spmm(&gpu, &a, &b, &lut, cfg);
                assert_bit_identical(&joint, &dense, &format!("{g:?} {}", cfg.tag()));
                assert!(stats.time_us > 0.0);
            }
        }
    }

    #[test]
    fn bit_identical_on_ragged_shapes_and_densities() {
        let gpu = Gpu::v100();
        for (m, k, n) in [(37usize, 53usize, 19usize), (13, 130, 37), (1, 64, 32)] {
            for zero_frac in [0.0, 0.5, 0.9] {
                let (a, b) = problem(m, k, n, zero_frac);
                let cfg = joint_heuristic::<f32>(n);
                for g in [PatternGranularity::Fine, PatternGranularity::Coarse] {
                    let lut = PatternLut::build(&b, g);
                    let (dense, _) = spmm(&gpu, &a, &b, cfg);
                    let (joint, _) = joint_spmm(&gpu, &a, &b, &lut, cfg);
                    assert_bit_identical(&joint, &dense, &format!("{m}x{k}x{n} zf={zero_frac}"));
                }
            }
        }
    }

    #[test]
    fn negative_zero_activations_stay_live_and_identical() {
        // -0.0 marks a tile live, so a B full of negative zeros must take
        // the unskipped path and still match the dense kernel exactly.
        let a = gen::uniform(16, 32, 0.5, 3);
        let b = Matrix::<f32>::from_fn(32, 32, |r, c| if (r + c) % 3 == 0 { -0.0 } else { 0.25 });
        let lut = PatternLut::build(&b, PatternGranularity::Fine);
        assert_eq!(lut.tiles_dead(), 0);
        let gpu = Gpu::v100();
        let cfg = SpmmConfig::default();
        let (dense, _) = spmm(&gpu, &a, &b, cfg);
        let (joint, _) = joint_spmm(&gpu, &a, &b, &lut, cfg);
        assert_bit_identical(&joint, &dense, "neg-zero");
    }

    #[test]
    fn profile_matches_launch_timing() {
        let (a, b) = problem(64, 128, 64, 0.75);
        let lut = PatternLut::build(&b, PatternGranularity::Fine);
        let gpu = Gpu::v100();
        let cfg = SpmmConfig::default();
        let (_, launch) = joint_spmm(&gpu, &a, &b, &lut, cfg);
        let profile = joint_spmm_profile(&gpu, &a, 128, 64, &lut, cfg);
        assert_eq!(launch.instructions, profile.instructions);
        assert!((launch.time_us - profile.time_us).abs() < 1e-9);
    }

    #[test]
    fn dedup_profile_is_bit_identical() {
        for (m, k, n, zf) in [(64usize, 96usize, 32usize, 0.7), (128, 128, 128, 0.85)] {
            let a = gen::with_cov(m, k, 0.8, 0.8, 21);
            let b = gen::activations(k, n, zf, 9);
            for g in [PatternGranularity::Fine, PatternGranularity::Coarse] {
                let lut = PatternLut::build(&b, g);
                let swizzle = RowSwizzle::by_length_desc(&a);
                let cfg = SpmmConfig::default();
                let fast = {
                    let kernel = JointSpmmKernel::<f32>::for_profile(&a, n, &swizzle, &lut, cfg)
                        .expect("valid profile kernel");
                    Gpu::v100().profile(&kernel)
                };
                let brute = {
                    let kernel = JointSpmmKernel::<f32>::for_profile(&a, n, &swizzle, &lut, cfg)
                        .expect("valid profile kernel");
                    Gpu::v100().with_block_dedup(false).profile(&kernel)
                };
                assert_eq!(fast, brute, "{m}x{k} n={n} {g:?}");
            }
        }
    }

    #[test]
    fn cached_profile_replays_identical_stats() {
        let (a, b) = problem(64, 128, 64, 0.7);
        let lut = PatternLut::build(&b, PatternGranularity::Fine);
        let gpu = Gpu::v100();
        let cache = gpu_sim::LaunchCache::new();
        let cfg = SpmmConfig::default();
        let (first, hit1) = joint_spmm_profile_cached(&gpu, &cache, &a, 128, 64, &lut, cfg);
        let (second, hit2) = joint_spmm_profile_cached(&gpu, &cache, &a, 128, 64, &lut, cfg);
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(first, second);
        // A different LUT over the same topology is a different problem.
        let b2 = gen::activations(128, 64, 0.3, 99);
        let lut2 = PatternLut::build(&b2, PatternGranularity::Fine);
        let (_, hit3) = joint_spmm_profile_cached(&gpu, &cache, &a, 128, 64, &lut2, cfg);
        assert!(!hit3, "LUT content must be part of the cache key");
    }

    #[test]
    fn static_audit_is_clean() {
        let (a, b) = problem(48, 96, 64, 0.7);
        let lut = PatternLut::build(&b, PatternGranularity::Coarse);
        let swizzle = RowSwizzle::by_length_desc(&a);
        let kernel =
            JointSpmmKernel::<f32>::for_profile(&a, 64, &swizzle, &lut, SpmmConfig::default())
                .expect("valid profile kernel");
        let audit = Gpu::v100().audit(&kernel);
        assert!(
            audit.refutation().is_none(),
            "joint kernel must pass the static auditor: {audit:?}"
        );
    }

    #[test]
    fn illegal_configurations_are_rejected() {
        let (a, b) = problem(32, 64, 128, 0.5);
        let lut = PatternLut::build(&b, PatternGranularity::Fine);
        let swizzle = RowSwizzle::by_length_desc(&a);
        // 64-wide strips span two LUT n-tiles: the probe would diverge.
        let wide = SpmmConfig {
            block_items_x: 64,
            block_items_y: 2,
            ..SpmmConfig::default()
        };
        assert!(matches!(
            JointSpmmKernel::<f32>::for_profile(&a, 128, &swizzle, &lut, wide),
            Err(SputnikError::IllegalConfig { .. })
        ));
        // The fused epilogue is a dense-kernel feature.
        let fused = SpmmConfig {
            fused_bias_relu: true,
            ..SpmmConfig::default()
        };
        assert!(matches!(
            JointSpmmKernel::<f32>::for_profile(&a, 128, &swizzle, &lut, fused),
            Err(SputnikError::IllegalConfig { .. })
        ));
        // A LUT built over a differently-shaped operand.
        let other = PatternLut::build(&gen::activations(64, 32, 0.5, 1), PatternGranularity::Fine);
        assert!(matches!(
            JointSpmmKernel::<f32>::for_profile(&a, 128, &swizzle, &other, SpmmConfig::default()),
            Err(SputnikError::ShapeMismatch { .. })
        ));
        // joint_heuristic always yields a legal tile.
        assert!(32u32.is_multiple_of(joint_heuristic::<f32>(512).block_items_x));
    }

    #[test]
    fn skip_counters_reach_the_metrics_registry() {
        let (a, b) = problem(48, 96, 64, 0.8);
        let lut = PatternLut::build(&b, PatternGranularity::Fine);
        let (probes, dead) = lut.probe_stats(&a);
        assert!(probes > 0 && dead > 0, "problem must exercise real skips");
        let before_total = gpu_sim::metrics::global().get("joint_tiles_total");
        let before_skip = gpu_sim::metrics::global().get("joint_tiles_skipped");
        let gpu = Gpu::v100();
        let _ = joint_spmm(&gpu, &a, &b, &lut, SpmmConfig::default());
        assert!(gpu_sim::metrics::global().get("joint_tiles_total") >= before_total + probes);
        assert!(gpu_sim::metrics::global().get("joint_tiles_skipped") >= before_skip + dead);
    }

    #[test]
    fn skipping_beats_the_dense_kernel_on_sparse_activations() {
        let a = gen::uniform(256, 512, 0.8, 5);
        let b = gen::activations(512, 128, 0.85, 7);
        let lut = PatternLut::build(&b, PatternGranularity::Fine);
        assert!(lut.dead_fraction() > 0.5);
        let gpu = Gpu::v100();
        let cfg = joint_heuristic::<f32>(128);
        let dense = spmm_profile(&gpu, &a, 512, 128, cfg);
        let joint = joint_spmm_profile(&gpu, &a, 512, 128, &lut, cfg);
        assert!(
            joint.time_us < dense.time_us,
            "joint {} us should beat dense {} us at 85% activation sparsity",
            joint.time_us,
            dense.time_us
        );
    }

    #[test]
    fn all_dead_lut_degenerates_to_stores_of_zero() {
        // Fully-zero activations: the LUT proves every tile dead, the output
        // is exactly zero, and useful FLOPs are zero.
        let a = gen::uniform(32, 64, 0.6, 8);
        let b = Matrix::<f32>::zeros(64, 32);
        let lut = PatternLut::build(&b, PatternGranularity::Fine);
        assert_eq!(lut.tiles_live(), 0);
        let gpu = Gpu::v100();
        let (c, stats) = joint_spmm(&gpu, &a, &b, &lut, SpmmConfig::default());
        assert!(c.as_slice().iter().all(|v| v.to_bits() == 0));
        assert_eq!(stats.flops, 0);
    }
}
