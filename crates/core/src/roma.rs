//! Reverse Offset Memory Alignment (ROMA), Section V-B2 of the paper.
//!
//! Vector memory instructions require addresses aligned to the vector width,
//! but CSR rows start at arbitrary offsets. ROMA backs each row's start
//! offset up to the nearest aligned address and masks the values that belong
//! to the previous row in the first main-loop iteration. "Relative to the
//! explicit padding scheme, ROMA does not change the amount of work done by
//! each thread block ... ROMA effectively pads the rows of the sparse matrix
//! with values from the row before it."

/// PTX instructions ROMA adds to the kernel prelude: 2 `and`, 1 `add`,
/// 1 `setp`, 2 `selp` (Section V-B2).
pub const ROMA_PRELUDE_INSTRS: u64 = 6;

/// PTX instructions the masking adds to the first main-loop iteration:
/// 1 `setp` and 2 `st.shared`.
pub const ROMA_MASK_INSTRS: u64 = 3;

/// The aligner a thread block runs in its prelude.
///
/// Offsets are in **elements** (not bytes); `vector_width` is in elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAligner {
    /// Row start offset after backing up to alignment.
    aligned_offset: usize,
    /// Number of elements loaded from the previous row that must be masked.
    prefix: usize,
    /// Nonzeros to process including the masked prefix.
    aligned_nonzeros: usize,
}

impl MemoryAligner {
    /// `row_offset`: the row's first value index; `nonzeros`: the row length;
    /// `vector_width`: elements per vector memory instruction (power of two).
    pub fn new(row_offset: usize, nonzeros: usize, vector_width: u32) -> Self {
        debug_assert!(vector_width.is_power_of_two());
        let mask = vector_width as usize - 1;
        let aligned_offset = row_offset & !mask;
        let prefix = row_offset - aligned_offset;
        Self {
            aligned_offset,
            prefix,
            aligned_nonzeros: nonzeros + prefix,
        }
    }

    /// Aligned start offset (guaranteed multiple of the vector width because
    /// "all CUDA memory allocation routines allocate memory with at least
    /// 256-byte alignment" — element 0 is aligned).
    pub fn aligned_offset(&self) -> usize {
        self.aligned_offset
    }

    /// Number of leading values that belong to the previous row and must be
    /// masked to zero before the first accumulation.
    pub fn prefix(&self) -> usize {
        self.prefix
    }

    /// Total values to process from the aligned offset.
    pub fn aligned_nonzeros(&self) -> usize {
        self.aligned_nonzeros
    }

    /// Whether index `i` (relative to the aligned offset) is masked.
    #[inline]
    pub fn is_masked(&self, i: usize) -> bool {
        i < self.prefix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn already_aligned_is_noop() {
        let a = MemoryAligner::new(64, 10, 4);
        assert_eq!(a.aligned_offset(), 64);
        assert_eq!(a.prefix(), 0);
        assert_eq!(a.aligned_nonzeros(), 10);
    }

    #[test]
    fn backs_up_to_alignment() {
        let a = MemoryAligner::new(67, 10, 4);
        assert_eq!(a.aligned_offset(), 64);
        assert_eq!(a.prefix(), 3);
        assert_eq!(a.aligned_nonzeros(), 13);
        assert!(a.is_masked(0) && a.is_masked(2));
        assert!(!a.is_masked(3));
    }

    #[test]
    fn scalar_width_never_masks() {
        for off in 0..16 {
            let a = MemoryAligner::new(off, 5, 1);
            assert_eq!(a.prefix(), 0);
            assert_eq!(a.aligned_offset(), off);
        }
    }

    #[test]
    fn width_two() {
        let a = MemoryAligner::new(7, 4, 2);
        assert_eq!(a.aligned_offset(), 6);
        assert_eq!(a.prefix(), 1);
        assert_eq!(a.aligned_nonzeros(), 5);
    }

    #[test]
    fn work_preserved_vs_padding() {
        // ROMA's aligned nonzero count never exceeds what explicit padding
        // to the vector width would process.
        for off in 0..64usize {
            for nnz in 0..64usize {
                let a = MemoryAligner::new(off, nnz, 4);
                let padded = nnz.div_ceil(4) * 4;
                assert!(a.aligned_nonzeros() <= padded + 4);
                assert_eq!(a.aligned_offset() % 4, 0);
            }
        }
    }
}
