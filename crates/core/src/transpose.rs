//! Transposed SpMM: `A^T B => C` (Section IX of the paper).
//!
//! "Training DNNs requires the computation A^T B, where A^T is the transpose
//! of a sparse matrix. It's difficult to fuse the transpose into the SpMM
//! for CSR matrices. However, for DNN training it's possible to cache the
//! row offsets and column indices for A^T when the sparse matrix topology is
//! updated and perform the transpose as an argsort of the matrix values."
//!
//! [`CachedTranspose`] is that scheme: the transposed topology, the value
//! permutation, and the row swizzle are computed once per topology update
//! (amortized over many training steps); each step only needs a cheap
//! device-side gather of the values ([`PermuteKernel`]) before running the
//! ordinary SpMM on the transposed matrix.

use crate::config::SpmmConfig;
use crate::spmm::SpmmKernel;
use gpu_sim::{
    AccessBound, AccessPattern, AlignmentFacts, BarrierFacts, BlockContext, BufferBound, BufferId,
    BufferSpec, Dim3, Gpu, Kernel, LaunchStats, StageBound, StaticFacts, SyncUnsafeSlice,
};
use sparse::{CsrMatrix, Matrix, RowSwizzle, Scalar};

/// Amortized transpose state for one sparse-matrix topology.
pub struct CachedTranspose<T: Scalar> {
    /// A^T with current values.
    at: CsrMatrix<T>,
    /// `at.values[t] = a.values[perm[t]]`.
    perm: Vec<u32>,
    /// Row swizzle of the transposed matrix (also amortized).
    swizzle: RowSwizzle,
}

impl<T: Scalar> CachedTranspose<T> {
    /// Build the cache: O(nnz) — runs once per topology update.
    pub fn new(a: &CsrMatrix<T>) -> Self {
        let at = a.transpose();
        let perm = a.transpose_permutation();
        let swizzle = RowSwizzle::by_length_desc(&at);
        Self { at, perm, swizzle }
    }

    /// The transposed matrix with current values.
    pub fn matrix(&self) -> &CsrMatrix<T> {
        &self.at
    }

    /// The cached value permutation.
    pub fn permutation(&self) -> &[u32] {
        &self.perm
    }

    /// Refresh A^T's values from A's (after a training step changed them but
    /// not the topology): the "argsort of the matrix values" — one gather.
    /// Returns the simulated cost of the device-side permute kernel.
    pub fn update_values(&mut self, gpu: &Gpu, a_values: &[T]) -> LaunchStats {
        assert_eq!(
            a_values.len(),
            self.at.nnz(),
            "topology changed; rebuild the cache"
        );
        let mut new_values = vec![T::zero(); a_values.len()];
        let stats = {
            let kernel = PermuteKernel::new(a_values, &self.perm, &mut new_values);
            gpu.launch(&kernel)
        };
        self.at = self.at.with_values(new_values);
        stats
    }

    /// Compute `A^T B` functionally using the cached topology.
    pub fn spmm(&self, gpu: &Gpu, b: &Matrix<T>, cfg: SpmmConfig) -> (Matrix<T>, LaunchStats) {
        let mut out = Matrix::<T>::zeros(self.at.rows(), b.cols());
        let stats = {
            let cfg = SpmmConfig {
                row_swizzle: true,
                ..cfg
            };
            let kernel = SpmmKernel::new(&self.at, b, &mut out, &self.swizzle, cfg);
            gpu.launch(&kernel)
        };
        (out, stats)
    }

    /// Cost-only `A^T B`.
    pub fn spmm_profile(&self, gpu: &Gpu, n: usize, cfg: SpmmConfig) -> LaunchStats {
        let cfg = SpmmConfig {
            row_swizzle: true,
            ..cfg
        };
        let kernel = SpmmKernel::<T>::for_profile(&self.at, n, &self.swizzle, cfg);
        gpu.profile(&kernel)
    }
}

pub const BUF_SRC: BufferId = BufferId(0);
pub const BUF_PERM: BufferId = BufferId(1);
pub const BUF_DST: BufferId = BufferId(2);

/// The per-step value gather: `dst[i] = src[perm[i]]`. Bandwidth-bound;
/// destination writes are coalesced, source reads scatter (the permutation
/// is a transpose order).
pub struct PermuteKernel<'a, T: Scalar> {
    src: &'a [T],
    perm: &'a [u32],
    dst: SyncUnsafeSlice<'a, T>,
}

const PERMUTE_BLOCK: usize = 256;

impl<'a, T: Scalar> PermuteKernel<'a, T> {
    pub fn new(src: &'a [T], perm: &'a [u32], dst: &'a mut [T]) -> Self {
        assert_eq!(src.len(), perm.len());
        assert_eq!(src.len(), dst.len());
        Self {
            src,
            perm,
            dst: SyncUnsafeSlice::new(dst),
        }
    }
}

impl<T: Scalar> Kernel for PermuteKernel<'_, T> {
    fn name(&self) -> String {
        format!("value_permute_{}", T::TAG)
    }

    fn grid(&self) -> Dim3 {
        Dim3::x((self.src.len().div_ceil(PERMUTE_BLOCK)).max(1) as u32)
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::x(PERMUTE_BLOCK as u32)
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        let eb = T::BYTES as u64;
        let n = self.src.len() as u64;
        vec![
            BufferSpec {
                id: BUF_SRC,
                name: "src_values",
                footprint_bytes: n * eb,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_PERM,
                name: "permutation",
                footprint_bytes: n * 4,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_DST,
                name: "dst_values",
                footprint_bytes: n * eb,
                pattern: AccessPattern::Streaming,
            },
        ]
    }

    /// Static safety facts for the launch auditor.
    ///
    /// Soundness: permutation reads and destination writes stream
    /// `[start, start + count)` with `start + count <= n`. The source gather
    /// dereferences `perm[i] * eb`, which is data-dependent — so the bound
    /// is established by scanning the permutation here, before launch: the
    /// worst access ends at `(max(perm) + 1) * eb`. For a true permutation
    /// that equals the footprint `n * eb` and bounds are proven; a corrupt
    /// permutation is refuted at dispatch instead of faulting mid-launch.
    /// No shared memory, no cross-warp communication.
    fn static_facts(&self) -> StaticFacts {
        let eb = T::BYTES as u64;
        let n = self.src.len() as u64;
        let src_end = self
            .perm
            .iter()
            .map(|&p| (u64::from(p) + 1) * eb)
            .max()
            .unwrap_or(0);
        StaticFacts {
            bounds: Some(vec![
                BufferBound {
                    slot: BUF_SRC.0,
                    bound: AccessBound::Extent(src_end),
                },
                BufferBound {
                    slot: BUF_PERM.0,
                    bound: AccessBound::Extent(n * 4),
                },
                BufferBound {
                    slot: BUF_DST.0,
                    bound: AccessBound::Extent(n * eb),
                },
            ]),
            alignment: AlignmentFacts::ScalarOnly,
            barrier: BarrierFacts::WarpSynchronous,
            stage: StageBound::Bytes(0),
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        let start = block.x as usize * PERMUTE_BLOCK;
        let count = PERMUTE_BLOCK.min(self.src.len() - start);
        if count == 0 {
            return;
        }
        let eb = T::BYTES;
        let warps = (count as u64).div_ceil(32);
        // Cost-only work (including gather-address staging) is skipped on
        // cache-hit replays.
        if ctx.recording() {
            // Permutation indices and destination: coalesced.
            ctx.cost.ld_global_instrs += warps;
            ctx.ld_global_trace(BUF_PERM, (start * 4) as u64, count as u64 * 4);
            ctx.cost.st_global_instrs += warps;
            ctx.st_global_trace(
                BUF_DST,
                (start * eb as usize) as u64,
                count as u64 * eb as u64,
            );
            // Source values: a gather — count real sectors from the
            // permutation, staged through the arena (32 lanes per warp).
            let mut addrs = ctx.scratch_u64(32);
            for chunk in self.perm[start..start + count].chunks(32) {
                addrs.clear();
                addrs.extend(chunk.iter().map(|&p| p as u64 * eb as u64));
                ctx.ld_global_gather(BUF_SRC, &addrs, eb);
            }
            ctx.misc(2 * warps);
        }

        if ctx.functional() {
            for i in start..start + count {
                unsafe { self.dst.write(i, self.src[self.perm[i] as usize]) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sparse::gen;

    #[test]
    fn transposed_spmm_matches_reference() {
        let a = gen::uniform(48, 64, 0.75, 301);
        let b = Matrix::<f32>::random(48, 24, 302); // note: A^T is 64x48
        let gpu = Gpu::v100();
        let cache = CachedTranspose::new(&a);
        let (c, stats) = cache.spmm(&gpu, &b, SpmmConfig::heuristic::<f32>(24));
        let expect = reference::spmm(&a.transpose(), &b);
        assert!(c.max_abs_diff(&expect) < 1e-3);
        assert!(stats.time_us > 0.0);
    }

    #[test]
    fn cached_update_equals_fresh_transpose() {
        let a = gen::uniform(32, 40, 0.7, 303);
        let gpu = Gpu::v100();
        let mut cache = CachedTranspose::new(&a);

        // Simulate a training step: same topology, new values.
        let new_values: Vec<f32> = a.values().iter().map(|v| v * 2.0 + 1.0).collect();
        let a2 = a.with_values(new_values.clone());
        let stats = cache.update_values(&gpu, &new_values);
        assert!(stats.time_us > 0.0);
        assert_eq!(
            cache.matrix(),
            &a2.transpose(),
            "cached update must equal a fresh transpose"
        );
    }

    #[test]
    fn update_is_cheap_relative_to_spmm() {
        // The point of the cache: the per-step value permute is cheaper than
        // the SpMM it enables (the scattered gather is bandwidth-bound, so
        // it cannot be free), and far cheaper than a topology rebuild, which
        // only happens when the sparsity pattern changes.
        let a = gen::uniform(2048, 2048, 0.8, 304);
        let gpu = Gpu::v100();
        let mut cache = CachedTranspose::new(&a);
        let update = cache.update_values(&gpu, a.values());
        let spmm = cache.spmm_profile(&gpu, 128, SpmmConfig::heuristic::<f32>(128));
        assert!(
            update.time_us < spmm.time_us,
            "permute {} us should be under the SpMM {} us",
            update.time_us,
            spmm.time_us
        );
        assert_eq!(update.bound_by, "dram", "the gather is bandwidth-bound");
    }

    #[test]
    fn permute_kernel_handles_ragged_sizes() {
        let gpu = Gpu::v100();
        for n in [1usize, 31, 257, 1000] {
            let src: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let perm: Vec<u32> = (0..n as u32).rev().collect();
            let mut dst = vec![0.0f32; n];
            let stats = {
                let kernel = PermuteKernel::new(&src, &perm, &mut dst);
                gpu.launch(&kernel)
            };
            assert!(stats.time_us > 0.0);
            for (i, &v) in dst.iter().enumerate() {
                assert_eq!(v, (n - 1 - i) as f32);
            }
        }
    }
}
