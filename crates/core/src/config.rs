//! Kernel configurations and the kernel-selection heuristic.
//!
//! The paper templatizes its kernels over tile sizes and generates
//! "specialized kernel variants for different regions of the problem space";
//! the structs here are the runtime equivalent of those template
//! parameters, and [`SpmmConfig::heuristic`] is the selection rule from
//! Section VII: "we select the n-dimension tile size to be N, rounded up to
//! a power of 2, up to a maximum of 64 ... for both kernels we use the
//! widest vector memory operations possible."

use serde::{Deserialize, Serialize};
use sparse::{IndexWidth, Scalar};

/// Configuration of the SpMM kernel (Figure 8's template parameters plus the
/// optimization toggles ablated in Table II).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpmmConfig {
    /// `kBlockItemsY`: rows of the output processed per thread block, each
    /// by an independent subwarp (Section V-B1).
    pub block_items_y: u32,
    /// `kBlockItemsK`: nonzeros consumed per main-loop iteration.
    pub block_items_k: u32,
    /// `kBlockItemsX`: output columns per 1-D tile.
    pub block_items_x: u32,
    /// Elements per vector memory instruction (1 = scalar; Table II's
    /// "-Vector Inst." row sets this to 1).
    pub vector_width: u32,
    /// Row-swizzle load balancing (Section V-C; Table II "-Load Balancing").
    pub row_swizzle: bool,
    /// Reverse offset memory alignment (Section V-B2). Required for vector
    /// loads from the sparse matrix; ignored when `vector_width == 1`.
    pub roma: bool,
    /// Index pre-scaling (Section V-D1; Table II "-Index Pre-Scale").
    pub index_prescale: bool,
    /// Residue-handling loop splitting + 128-bit shared loads
    /// (Section V-D2; Table II "-Residue Unroll").
    pub residue_unroll: bool,
    /// Sparse-matrix column-index width (16-bit for mixed precision).
    pub index_width: IndexWidth,
    /// Fuse a bias + ReLU epilogue into the output store (used by the sparse
    /// MobileNet 1x1 convolutions).
    pub fused_bias_relu: bool,
    /// Promise that every row offset is already aligned to the vector width
    /// (the explicit-padding alternative to ROMA, Section V-B2 — see
    /// `CsrMatrix::padded_to_multiple`). Enables vector loads from the
    /// sparse matrix without ROMA's prelude/masking cost; the kernel
    /// verifies the promise in debug builds.
    pub assume_aligned: bool,
}

impl Default for SpmmConfig {
    fn default() -> Self {
        Self {
            block_items_y: 4,
            block_items_k: 32,
            block_items_x: 32,
            vector_width: 4,
            row_swizzle: true,
            roma: true,
            index_prescale: true,
            residue_unroll: true,
            index_width: IndexWidth::U32,
            fused_bias_relu: false,
            assume_aligned: false,
        }
    }
}

impl SpmmConfig {
    /// Threads along x per subwarp: each thread accumulates `vector_width`
    /// outputs, so a row tile of `block_items_x` columns needs
    /// `block_items_x / vector_width` threads.
    pub fn threads_x(&self) -> u32 {
        (self.block_items_x / self.vector_width).max(1)
    }

    /// Threads per block.
    pub fn block_threads(&self) -> u32 {
        self.threads_x() * self.block_items_y
    }

    /// Subwarps that share one 32-thread warp (1 when a subwarp spans a full
    /// warp or more).
    pub fn subwarps_per_warp(&self) -> u32 {
        (32 / self.threads_x()).max(1)
    }

    /// The paper's kernel-selection heuristic for a problem with `n` output
    /// columns: n-tile = next power of two, capped at 64; widest vector
    /// memory operations possible given alignment.
    pub fn heuristic<T: Scalar>(n: usize) -> Self {
        let tile_x = (n.next_power_of_two() as u32).clamp(8, 64);
        // Widest vector op: 16 bytes per lane (float4 / half8), narrowed
        // until the tile divides evenly.
        let max_vec = 16 / T::BYTES;
        let mut vector_width = max_vec;
        while vector_width > 1
            && (!n.is_multiple_of(vector_width as usize) || !tile_x.is_multiple_of(vector_width))
        {
            vector_width /= 2;
        }
        let index_width = if T::BYTES == 2 {
            IndexWidth::U16
        } else {
            IndexWidth::U32
        };
        Self {
            block_items_y: 4,
            block_items_k: 32,
            block_items_x: tile_x,
            vector_width,
            row_swizzle: true,
            roma: vector_width > 1,
            // Not profitable at 16-bit indices (paper, Section V-D3).
            index_prescale: index_width == IndexWidth::U32,
            residue_unroll: true,
            index_width,
            fused_bias_relu: false,
            assume_aligned: false,
        }
    }

    /// Validate the configuration for a given problem.
    pub fn validate(&self, cols: usize) -> Result<(), String> {
        if !self.vector_width.is_power_of_two() || self.vector_width > 8 {
            return Err(format!(
                "vector_width {} must be a power of two <= 8",
                self.vector_width
            ));
        }
        if !self.block_items_x.is_multiple_of(self.vector_width) {
            return Err("block_items_x must be divisible by vector_width".into());
        }
        if !self.block_items_y.is_power_of_two() || self.block_items_y > 32 {
            return Err("block_items_y must be a power of two <= 32".into());
        }
        if self.block_items_k == 0 || !self.block_items_k.is_multiple_of(4) {
            return Err("block_items_k must be a positive multiple of 4".into());
        }
        if !self.index_width.can_index(cols) {
            return Err(format!(
                "{} columns overflow {:?} indices",
                cols, self.index_width
            ));
        }
        Ok(())
    }

    /// Shared memory per block: one strip of values + indices per subwarp.
    pub fn smem_bytes<T: Scalar>(&self) -> u32 {
        self.block_items_y * self.block_items_k * (4 + self.index_width.bytes())
    }

    /// Register estimate per thread: accumulators (always f32) plus address
    /// arithmetic and loop state.
    pub fn regs_per_thread(&self) -> u32 {
        24 + 2 * self.vector_width
    }

    /// A descriptive suffix for kernel names.
    pub fn tag(&self) -> String {
        format!(
            "y{}k{}x{}v{}{}{}{}{}",
            self.block_items_y,
            self.block_items_k,
            self.block_items_x,
            self.vector_width,
            if self.row_swizzle { "" } else { "_noswz" },
            if self.roma { "" } else { "_noroma" },
            if self.index_prescale { "" } else { "_nopre" },
            if self.residue_unroll { "" } else { "_nores" },
        )
    }
}

/// Configuration of the SDDMM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SddmmConfig {
    /// Nonzero outputs per 1-D tile (the paper uses 32).
    pub block_items_x: u32,
    /// Elements per vector memory instruction on the dense operands.
    pub vector_width: u32,
    /// Subwarp tiling: lanes assigned per output (32 = full warp per
    /// nonzero strip slice; fewer spreads a warp across more outputs).
    pub threads_per_output_tile: u32,
    /// Process row tiles in swizzled (sorted) order. Less critical than for
    /// SpMM — "all dot-products to be computed are of equal length" — but
    /// supported for the ablation.
    pub row_swizzle: bool,
    /// Compute the general SDDMM `D = (A B^T) ⊙ C` (element-wise scaling by
    /// the mask's values) instead of the indicator form the paper
    /// specializes to. Per the paper's footnote, this "adds 1 load and 1
    /// multiply instruction prior to storing the output".
    pub scale_by_mask: bool,
}

impl Default for SddmmConfig {
    fn default() -> Self {
        Self {
            block_items_x: 32,
            vector_width: 4,
            threads_per_output_tile: 32,
            row_swizzle: false,
            scale_by_mask: false,
        }
    }
}

impl SddmmConfig {
    /// The paper's SDDMM setup: n-dimension tile 32, widest vectors possible
    /// given the dot-product length `k`.
    pub fn heuristic<T: Scalar>(k: usize) -> Self {
        let max_vec = 16 / T::BYTES;
        let mut vector_width = max_vec;
        while vector_width > 1 && !k.is_multiple_of(vector_width as usize) {
            vector_width /= 2;
        }
        Self {
            block_items_x: 32,
            vector_width,
            threads_per_output_tile: 32,
            row_swizzle: false,
            scale_by_mask: false,
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        if !self.vector_width.is_power_of_two() || self.vector_width > 8 {
            return Err("vector_width must be a power of two <= 8".into());
        }
        if !self.threads_per_output_tile.is_power_of_two() || self.threads_per_output_tile > 32 {
            return Err("threads_per_output_tile must be a power of two <= 32".into());
        }
        if self.block_items_x == 0 {
            return Err("block_items_x must be positive".into());
        }
        Ok(())
    }

    pub fn tag(&self) -> String {
        format!(
            "x{}v{}t{}",
            self.block_items_x, self.vector_width, self.threads_per_output_tile
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::Half;

    #[test]
    fn default_is_valid() {
        SpmmConfig::default().validate(4096).unwrap();
        SddmmConfig::default().validate().unwrap();
    }

    #[test]
    fn heuristic_tile_follows_n() {
        // "n-dimension tile size to be N, rounded up to a power of 2, up to
        // a maximum of 64."
        assert_eq!(SpmmConfig::heuristic::<f32>(8).block_items_x, 8);
        assert_eq!(SpmmConfig::heuristic::<f32>(20).block_items_x, 32);
        assert_eq!(SpmmConfig::heuristic::<f32>(64).block_items_x, 64);
        assert_eq!(SpmmConfig::heuristic::<f32>(512).block_items_x, 64);
    }

    #[test]
    fn heuristic_vector_width_respects_alignment() {
        // N divisible by 4: full float4.
        assert_eq!(SpmmConfig::heuristic::<f32>(128).vector_width, 4);
        // N = 2 mod 4: float2.
        assert_eq!(SpmmConfig::heuristic::<f32>(66).vector_width, 2);
        // Odd N: scalar only.
        assert_eq!(SpmmConfig::heuristic::<f32>(49).vector_width, 1);
    }

    #[test]
    fn heuristic_mixed_precision_uses_half8_and_u16() {
        let cfg = SpmmConfig::heuristic::<Half>(128);
        assert_eq!(cfg.vector_width, 8, "128-bit loads carry 8 halves");
        assert_eq!(cfg.index_width, IndexWidth::U16);
        assert!(!cfg.index_prescale, "prescale disabled at 16-bit indices");
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let cfg = SpmmConfig {
            vector_width: 3,
            ..SpmmConfig::default()
        };
        assert!(cfg.validate(1024).is_err());
        let cfg = SpmmConfig {
            index_width: IndexWidth::U16,
            ..SpmmConfig::default()
        };
        assert!(
            cfg.validate(1 << 20).is_err(),
            "u16 cannot index 1M columns"
        );
    }

    #[test]
    fn thread_shapes() {
        let cfg = SpmmConfig::default();
        assert_eq!(cfg.threads_x(), 8); // 32 cols / vec4
        assert_eq!(cfg.block_threads(), 32);
        assert_eq!(cfg.subwarps_per_warp(), 4);
    }

    #[test]
    fn smem_scales_with_index_width() {
        let mut cfg = SpmmConfig::default();
        let wide = cfg.smem_bytes::<f32>();
        cfg.index_width = IndexWidth::U16;
        let narrow = cfg.smem_bytes::<Half>();
        assert!(narrow < wide);
    }
}
