//! Kernel auto-tuning: a memoized oracle selector.
//!
//! The paper's heuristic (Section VII) picks well on most problems, but its
//! MobileNet experiment needed a hand oracle "for four 1x1 convolutions
//! where our heuristic was sub-optimal", and Section VII-B concludes that
//! "better kernel selection heuristics could greatly improve performance".
//! This module productizes the oracle: exhaustively profile a variant grid
//! once per *problem class* (bucketized shape + sparsity) and cache the
//! winner, the way production kernel libraries keep autotuning caches.

use crate::config::SpmmConfig;
use crate::spmm;
use gpu_sim::Gpu;
use serde::{Deserialize, Serialize};
use sparse::{CsrMatrix, Scalar};
use std::collections::HashMap;

/// A bucketized problem identity: problems in the same bucket share a tuned
/// configuration. Shapes are bucketed to the nearest power of two and
/// sparsity to 5% steps, so the cache stays small while staying relevant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProblemClass {
    pub m_pow2: u32,
    pub k_pow2: u32,
    pub n_pow2: u32,
    /// Sparsity in 5% buckets (0..=20).
    pub sparsity_bucket: u8,
}

impl ProblemClass {
    pub fn of<T: Scalar>(a: &CsrMatrix<T>, n: usize) -> Self {
        Self {
            m_pow2: (a.rows().max(1) as u32)
                .next_power_of_two()
                .trailing_zeros(),
            k_pow2: (a.cols().max(1) as u32)
                .next_power_of_two()
                .trailing_zeros(),
            n_pow2: (n.max(1) as u32).next_power_of_two().trailing_zeros(),
            sparsity_bucket: (a.sparsity() * 20.0).round().clamp(0.0, 20.0) as u8,
        }
    }
}

/// Result of one tuning search.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TuneResult {
    pub config: SpmmConfig,
    /// Simulated time of the winning variant on the probe problem.
    pub best_us: f64,
    /// Time of the heuristic's pick on the probe problem.
    pub heuristic_us: f64,
}

impl TuneResult {
    /// How much the search beat the heuristic (1.0 = tie).
    pub fn speedup_over_heuristic(&self) -> f64 {
        self.heuristic_us / self.best_us
    }
}

/// A memoized SpMM autotuner.
#[derive(Default)]
pub struct AutoTuner {
    cache: HashMap<ProblemClass, TuneResult>,
}

impl AutoTuner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Configurations the search covers for a given N.
    fn candidates<T: Scalar>(k: usize, n: usize) -> Vec<SpmmConfig> {
        let heuristic = SpmmConfig::heuristic::<T>(n);
        let mut out = vec![heuristic];
        for block_items_y in [1u32, 2, 4, 8] {
            for block_items_x in [16u32, 32, 64] {
                for vector_width in [1u32, 2, 4] {
                    let cfg = SpmmConfig {
                        block_items_y,
                        block_items_x,
                        vector_width,
                        roma: vector_width > 1,
                        ..heuristic
                    };
                    if cfg.validate(k).is_err() || cfg.threads_x() > 32 {
                        continue;
                    }
                    if vector_width > 1 && !n.is_multiple_of(vector_width as usize) {
                        continue;
                    }
                    if cfg != heuristic {
                        out.push(cfg);
                    }
                }
            }
        }
        out
    }

    /// The tuned configuration for this problem, searching at most once per
    /// problem class.
    pub fn tune<T: Scalar>(&mut self, gpu: &Gpu, a: &CsrMatrix<T>, n: usize) -> TuneResult {
        let class = ProblemClass::of(a, n);
        if let Some(&hit) = self.cache.get(&class) {
            return hit;
        }
        let heuristic = SpmmConfig::heuristic::<T>(n);
        let heuristic_us = spmm::spmm_profile::<T>(gpu, a, a.cols(), n, heuristic).time_us;
        let mut best = TuneResult {
            config: heuristic,
            best_us: heuristic_us,
            heuristic_us,
        };
        for cfg in Self::candidates::<T>(a.cols(), n) {
            let t = spmm::spmm_profile::<T>(gpu, a, a.cols(), n, cfg).time_us;
            if t < best.best_us {
                best.best_us = t;
                best.config = cfg;
            }
        }
        self.cache.insert(class, best);
        best
    }

    /// Cached classes (for inspection/persistence).
    pub fn entries(&self) -> impl Iterator<Item = (&ProblemClass, &TuneResult)> {
        self.cache.iter()
    }

    pub fn len(&self) -> usize {
        self.cache.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen;

    #[test]
    fn tuned_config_never_loses_to_heuristic() {
        let gpu = Gpu::v100();
        let mut tuner = AutoTuner::new();
        for (m, k, n, s) in [
            (256usize, 256usize, 64usize, 0.8),
            (1000, 1024, 4, 0.9),
            (512, 128, 52, 0.7),
        ] {
            let a = gen::uniform(m, k, s, (m + n) as u64);
            let result = tuner.tune(&gpu, &a, n);
            assert!(result.best_us <= result.heuristic_us + 1e-9, "{m}x{k}x{n}");
            assert!(result.speedup_over_heuristic() >= 1.0);
        }
    }

    #[test]
    fn search_runs_once_per_class() {
        let gpu = Gpu::v100();
        let mut tuner = AutoTuner::new();
        let a1 = gen::uniform(256, 256, 0.8, 1);
        let a2 = gen::uniform(250, 250, 0.81, 2); // same buckets
        let r1 = tuner.tune(&gpu, &a1, 64);
        assert_eq!(tuner.len(), 1);
        let r2 = tuner.tune(&gpu, &a2, 64);
        assert_eq!(tuner.len(), 1, "same class must hit the cache");
        assert_eq!(r1.config, r2.config);
        // A different N lands in a new class.
        tuner.tune(&gpu, &a1, 128);
        assert_eq!(tuner.len(), 2);
    }

    #[test]
    fn small_n_problems_benefit_from_tuning() {
        // The oracle finds real wins where the heuristic is weakest (the
        // classifier-like tiny-N shapes).
        let gpu = Gpu::v100();
        let mut tuner = AutoTuner::new();
        let a = gen::uniform(1000, 1024, 0.9, 3);
        let result = tuner.tune(&gpu, &a, 4);
        assert!(
            result.speedup_over_heuristic() > 1.05,
            "expected a tuning win on N=4, got {:.3}x",
            result.speedup_over_heuristic()
        );
    }

    #[test]
    fn problem_class_bucketing() {
        let a = gen::uniform(1000, 2000, 0.82, 4);
        let c = ProblemClass::of(&a, 100);
        assert_eq!(c.m_pow2, 10); // 1024
        assert_eq!(c.k_pow2, 11); // 2048
        assert_eq!(c.n_pow2, 7); // 128
        assert_eq!(c.sparsity_bucket, 16); // 0.82 -> 16.4 -> 16
    }
}
