//! Kernel auto-tuning: a memoized oracle selector.
//!
//! The paper's heuristic (Section VII) picks well on most problems, but its
//! MobileNet experiment needed a hand oracle "for four 1x1 convolutions
//! where our heuristic was sub-optimal", and Section VII-B concludes that
//! "better kernel selection heuristics could greatly improve performance".
//! This module productizes the oracle: exhaustively profile a variant grid
//! once per *problem class* (bucketized shape + sparsity) and cache the
//! winner, the way production kernel libraries keep autotuning caches.

use crate::config::SpmmConfig;
use crate::spmm;
use gpu_sim::{Gpu, LaunchCache};
use serde::{Deserialize, Serialize};
use sparse::{CsrMatrix, IndexWidth, Scalar};
use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// A bucketized problem identity: problems in the same bucket share a tuned
/// configuration. Shapes are bucketed to the nearest power of two and
/// sparsity to 5% steps, so the cache stays small while staying relevant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProblemClass {
    pub m_pow2: u32,
    pub k_pow2: u32,
    pub n_pow2: u32,
    /// Sparsity in 5% buckets (0..=20).
    pub sparsity_bucket: u8,
}

impl ProblemClass {
    pub fn of<T: Scalar>(a: &CsrMatrix<T>, n: usize) -> Self {
        Self {
            m_pow2: (a.rows().max(1) as u32)
                .next_power_of_two()
                .trailing_zeros(),
            k_pow2: (a.cols().max(1) as u32)
                .next_power_of_two()
                .trailing_zeros(),
            n_pow2: (n.max(1) as u32).next_power_of_two().trailing_zeros(),
            sparsity_bucket: (a.sparsity() * 20.0).round().clamp(0.0, 20.0) as u8,
        }
    }
}

/// Result of one tuning search.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TuneResult {
    pub config: SpmmConfig,
    /// Simulated time of the winning variant on the probe problem.
    pub best_us: f64,
    /// Time of the heuristic's pick on the probe problem.
    pub heuristic_us: f64,
}

impl TuneResult {
    /// How much the search beat the heuristic (1.0 = tie).
    pub fn speedup_over_heuristic(&self) -> f64 {
        self.heuristic_us / self.best_us
    }
}

/// A memoized SpMM autotuner.
#[derive(Debug, Default)]
pub struct AutoTuner {
    cache: HashMap<ProblemClass, TuneResult>,
}

impl AutoTuner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Configurations the search covers for a given N.
    fn candidates<T: Scalar>(k: usize, n: usize) -> Vec<SpmmConfig> {
        let heuristic = SpmmConfig::heuristic::<T>(n);
        let mut out = vec![heuristic];
        for block_items_y in [1u32, 2, 4, 8] {
            for block_items_x in [16u32, 32, 64] {
                for vector_width in [1u32, 2, 4] {
                    let cfg = SpmmConfig {
                        block_items_y,
                        block_items_x,
                        vector_width,
                        roma: vector_width > 1,
                        ..heuristic
                    };
                    if cfg.validate(k).is_err() || cfg.threads_x() > 32 {
                        continue;
                    }
                    if vector_width > 1 && !n.is_multiple_of(vector_width as usize) {
                        continue;
                    }
                    if cfg != heuristic {
                        out.push(cfg);
                    }
                }
            }
        }
        out
    }

    /// The tuned configuration for this problem, searching at most once per
    /// problem class.
    pub fn tune<T: Scalar>(&mut self, gpu: &Gpu, a: &CsrMatrix<T>, n: usize) -> TuneResult {
        self.tune_impl(gpu, None, a, n)
    }

    /// [`Self::tune`] with every probe launch going through a cross-launch
    /// [`LaunchCache`]. The tuner's own memo works at problem-*class*
    /// granularity; the launch cache works at exact-(kernel, operand, device)
    /// granularity, so repeated tuning sessions over overlapping corpora skip
    /// re-simulating every variant they have seen before.
    pub fn tune_cached<T: Scalar>(
        &mut self,
        gpu: &Gpu,
        launch_cache: &LaunchCache,
        a: &CsrMatrix<T>,
        n: usize,
    ) -> TuneResult {
        self.tune_impl(gpu, Some(launch_cache), a, n)
    }

    fn tune_impl<T: Scalar>(
        &mut self,
        gpu: &Gpu,
        launch_cache: Option<&LaunchCache>,
        a: &CsrMatrix<T>,
        n: usize,
    ) -> TuneResult {
        let class = ProblemClass::of(a, n);
        if let Some(&hit) = self.cache.get(&class) {
            return hit;
        }
        gpu_sim::metrics::global().incr("tune_searches", 1);
        // The span lives on the device track, so its duration is the
        // simulated time of every probe launch the search runs. Capture the
        // flag once: the span must be closed iff it was opened, even if
        // tracing toggles mid-search.
        let traced = gpu_sim::trace::enabled();
        if traced {
            gpu_sim::trace::begin_span(
                "tune",
                &gpu.device().name,
                &format!(
                    "tune m=2^{} k=2^{} n=2^{}",
                    class.m_pow2, class.k_pow2, class.n_pow2
                ),
            );
        }
        let profile = |cfg: SpmmConfig| match launch_cache {
            Some(lc) => spmm::spmm_profile_cached::<T>(gpu, lc, a, a.cols(), n, cfg).0,
            None => spmm::spmm_profile::<T>(gpu, a, a.cols(), n, cfg),
        };
        let heuristic = SpmmConfig::heuristic::<T>(n);
        let heuristic_us = profile(heuristic).time_us;
        let mut best = TuneResult {
            config: heuristic,
            best_us: heuristic_us,
            heuristic_us,
        };
        for cfg in Self::candidates::<T>(a.cols(), n) {
            let t = profile(cfg).time_us;
            if t < best.best_us {
                best.best_us = t;
                best.config = cfg;
            }
        }
        if traced {
            gpu_sim::trace::end_span(&gpu.device().name);
        }
        self.cache.insert(class, best);
        best
    }

    /// Cached classes (for inspection/persistence).
    pub fn entries(&self) -> impl Iterator<Item = (&ProblemClass, &TuneResult)> {
        self.cache.iter()
    }

    pub fn len(&self) -> usize {
        self.cache.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Format version of the on-disk cache. Bump on any change to the entry
    /// layout; [`Self::load_from`] rejects files written by other versions so
    /// stale tuning decisions can never leak across format changes.
    pub const CACHE_FORMAT_VERSION: u32 = 1;
    const CACHE_KIND: &'static str = "sputnik_autotune_cache";

    /// Persist the memo table as JSON lines: a versioned header object
    /// followed by one flat entry object per problem class, sorted for
    /// deterministic output. (Hand-rolled writer/reader — the flat format
    /// needs no general JSON machinery.)
    pub fn save_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut entries: Vec<_> = self.cache.iter().collect();
        entries.sort_by_key(|(c, _)| (c.m_pow2, c.k_pow2, c.n_pow2, c.sparsity_bucket));
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(
            f,
            "{{\"version\":{},\"kind\":\"{}\"}}",
            Self::CACHE_FORMAT_VERSION,
            Self::CACHE_KIND
        )?;
        for (class, r) in entries {
            let c = &r.config;
            writeln!(
                f,
                concat!(
                    "{{\"m_pow2\":{},\"k_pow2\":{},\"n_pow2\":{},\"sparsity_bucket\":{},",
                    "\"block_items_y\":{},\"block_items_k\":{},\"block_items_x\":{},",
                    "\"vector_width\":{},\"row_swizzle\":{},\"roma\":{},",
                    "\"index_prescale\":{},\"residue_unroll\":{},\"index_bytes\":{},",
                    "\"fused_bias_relu\":{},\"assume_aligned\":{},",
                    "\"best_us\":{:?},\"heuristic_us\":{:?}}}"
                ),
                class.m_pow2,
                class.k_pow2,
                class.n_pow2,
                class.sparsity_bucket,
                c.block_items_y,
                c.block_items_k,
                c.block_items_x,
                c.vector_width,
                c.row_swizzle,
                c.roma,
                c.index_prescale,
                c.residue_unroll,
                c.index_width.bytes(),
                c.fused_bias_relu,
                c.assume_aligned,
                r.best_us,
                r.heuristic_us,
            )?;
        }
        f.flush()
    }

    /// Load a memo table written by [`Self::save_to`]. Fails with
    /// `InvalidData` on a missing/mismatched version header or a malformed
    /// entry — a corrupt cache must never silently tune kernels.
    pub fn load_from(path: impl AsRef<Path>) -> io::Result<Self> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let f = io::BufReader::new(std::fs::File::open(path)?);
        let mut lines = f.lines();
        let header = lines
            .next()
            .ok_or_else(|| bad("empty autotune cache file".into()))??;
        let version = json_u64(&header, "version")
            .ok_or_else(|| bad("autotune cache header missing version".into()))?;
        if version != u64::from(Self::CACHE_FORMAT_VERSION)
            || json_raw(&header, "kind") != Some(&format!("\"{}\"", Self::CACHE_KIND))
        {
            return Err(bad(format!(
                "autotune cache header {header:?} does not match version {} kind {}",
                Self::CACHE_FORMAT_VERSION,
                Self::CACHE_KIND
            )));
        }
        let mut tuner = Self::new();
        for (i, line) in lines.enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let entry = parse_entry(&line)
                .ok_or_else(|| bad(format!("malformed autotune cache entry on line {}", i + 2)))?;
            tuner.cache.insert(entry.0, entry.1);
        }
        Ok(tuner)
    }
}

/// The raw text of `"key":<value>` in a flat one-line JSON object.
fn json_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim())
}

fn json_u64(line: &str, key: &str) -> Option<u64> {
    json_raw(line, key)?.parse().ok()
}

fn json_f64(line: &str, key: &str) -> Option<f64> {
    json_raw(line, key)?.parse().ok()
}

fn json_bool(line: &str, key: &str) -> Option<bool> {
    json_raw(line, key)?.parse().ok()
}

fn parse_entry(line: &str) -> Option<(ProblemClass, TuneResult)> {
    let class = ProblemClass {
        m_pow2: json_u64(line, "m_pow2")? as u32,
        k_pow2: json_u64(line, "k_pow2")? as u32,
        n_pow2: json_u64(line, "n_pow2")? as u32,
        sparsity_bucket: u8::try_from(json_u64(line, "sparsity_bucket")?).ok()?,
    };
    let index_width = match json_u64(line, "index_bytes")? {
        2 => IndexWidth::U16,
        4 => IndexWidth::U32,
        _ => return None,
    };
    let config = SpmmConfig {
        block_items_y: json_u64(line, "block_items_y")? as u32,
        block_items_k: json_u64(line, "block_items_k")? as u32,
        block_items_x: json_u64(line, "block_items_x")? as u32,
        vector_width: json_u64(line, "vector_width")? as u32,
        row_swizzle: json_bool(line, "row_swizzle")?,
        roma: json_bool(line, "roma")?,
        index_prescale: json_bool(line, "index_prescale")?,
        residue_unroll: json_bool(line, "residue_unroll")?,
        index_width,
        fused_bias_relu: json_bool(line, "fused_bias_relu")?,
        assume_aligned: json_bool(line, "assume_aligned")?,
    };
    Some((
        class,
        TuneResult {
            config,
            best_us: json_f64(line, "best_us")?,
            heuristic_us: json_f64(line, "heuristic_us")?,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen;

    #[test]
    fn tuned_config_never_loses_to_heuristic() {
        let gpu = Gpu::v100();
        let mut tuner = AutoTuner::new();
        for (m, k, n, s) in [
            (256usize, 256usize, 64usize, 0.8),
            (1000, 1024, 4, 0.9),
            (512, 128, 52, 0.7),
        ] {
            let a = gen::uniform(m, k, s, (m + n) as u64);
            let result = tuner.tune(&gpu, &a, n);
            assert!(result.best_us <= result.heuristic_us + 1e-9, "{m}x{k}x{n}");
            assert!(result.speedup_over_heuristic() >= 1.0);
        }
    }

    #[test]
    fn search_runs_once_per_class() {
        let gpu = Gpu::v100();
        let mut tuner = AutoTuner::new();
        let a1 = gen::uniform(256, 256, 0.8, 1);
        let a2 = gen::uniform(250, 250, 0.81, 2); // same buckets
        let r1 = tuner.tune(&gpu, &a1, 64);
        assert_eq!(tuner.len(), 1);
        let r2 = tuner.tune(&gpu, &a2, 64);
        assert_eq!(tuner.len(), 1, "same class must hit the cache");
        assert_eq!(r1.config, r2.config);
        // A different N lands in a new class.
        tuner.tune(&gpu, &a1, 128);
        assert_eq!(tuner.len(), 2);
    }

    #[test]
    fn small_n_problems_benefit_from_tuning() {
        // The oracle finds real wins where the heuristic is weakest (the
        // classifier-like tiny-N shapes).
        let gpu = Gpu::v100();
        let mut tuner = AutoTuner::new();
        let a = gen::uniform(1000, 1024, 0.9, 3);
        let result = tuner.tune(&gpu, &a, 4);
        assert!(
            result.speedup_over_heuristic() > 1.05,
            "expected a tuning win on N=4, got {:.3}x",
            result.speedup_over_heuristic()
        );
    }

    #[test]
    fn cache_round_trips_through_disk() {
        let gpu = Gpu::v100();
        let mut tuner = AutoTuner::new();
        let a = gen::uniform(256, 256, 0.8, 5);
        let r1 = tuner.tune(&gpu, &a, 64);
        tuner.tune(&gpu, &a, 4);
        let dir = std::env::temp_dir().join("sputnik_tune_cache_test");
        let path = dir.join("autotune.json");
        tuner.save_to(&path).unwrap();
        let loaded = AutoTuner::load_from(&path).unwrap();
        assert_eq!(loaded.len(), tuner.len());
        // A reloaded tuner serves the persisted decision without searching.
        let mut loaded = loaded;
        let r2 = loaded.tune(&gpu, &a, 64);
        assert_eq!(r1.config, r2.config);
        assert_eq!(r1.best_us, r2.best_us);
        assert_eq!(r1.heuristic_us, r2.heuristic_us);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_cache_versions_are_rejected() {
        let dir = std::env::temp_dir().join("sputnik_tune_cache_ver_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("autotune.json");
        std::fs::write(
            &path,
            "{\"version\":999,\"kind\":\"sputnik_autotune_cache\"}\n",
        )
        .unwrap();
        let err = AutoTuner::load_from(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::write(&path, "{\"version\":1,\"kind\":\"something_else\"}\n").unwrap();
        assert!(AutoTuner::load_from(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tune_cached_reuses_probe_launches() {
        let gpu = Gpu::v100();
        let cache = gpu_sim::LaunchCache::new();
        let a = gen::uniform(256, 256, 0.8, 6);
        let cold = AutoTuner::new().tune_cached(&gpu, &cache, &a, 64);
        let cold_misses = cache.misses();
        assert!(cold_misses > 0, "first search simulates every variant");
        // Within one search the heuristic is probed twice (baseline + first
        // candidate); the second probe is already a hit.
        assert_eq!(cache.hits(), 1);
        // A fresh tuner (empty class memo) re-probes the same variants; the
        // launch cache serves all of them.
        let warm = AutoTuner::new().tune_cached(&gpu, &cache, &a, 64);
        assert_eq!(cache.misses(), cold_misses, "no new simulations");
        assert_eq!(cache.hits(), 1 + cold_misses + 1);
        assert_eq!(cold.config, warm.config);
        assert_eq!(cold.best_us, warm.best_us);
    }

    #[test]
    fn problem_class_bucketing() {
        let a = gen::uniform(1000, 2000, 0.82, 4);
        let c = ProblemClass::of(&a, 100);
        assert_eq!(c.m_pow2, 10); // 1024
        assert_eq!(c.k_pow2, 11); // 2048
        assert_eq!(c.n_pow2, 7); // 128
        assert_eq!(c.sparsity_bucket, 16); // 0.82 -> 16.4 -> 16
    }
}
