//! Golden CPU reference implementations.
//!
//! Every simulated kernel in this workspace is validated against these
//! straightforward implementations. They use f32 accumulation regardless of
//! storage precision — the same numerics as the paper's mixed-precision
//! scheme — so kernel outputs must match exactly (not approximately) when
//! the kernel accumulates in the same order, and within tight tolerance
//! otherwise.

use sparse::{CsrMatrix, Matrix, Scalar};

/// SpMM: `A (sparse, m x k) * B (dense, k x n) => C (dense, m x n)`.
pub fn spmm<T: Scalar>(a: &CsrMatrix<T>, b: &Matrix<f32>) -> Matrix<f32> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let n = b.cols();
    let mut c = Matrix::<f32>::zeros(a.rows(), n);
    for i in 0..a.rows() {
        let (cols, vals) = a.row(i);
        let crow_start = i * n;
        let out = c.as_mut_slice();
        // Fused multiply-add, matching the kernels' accumulation: the
        // per-element order is the natural nonzero order either way, and
        // using the same rounding keeps kernel outputs bit-comparable.
        gpu_sim::lanes::fma_accumulate(
            &mut out[crow_start..crow_start + n],
            cols.iter()
                .zip(vals)
                .map(|(&col, &val)| (val.to_f32(), b.row(col as usize))),
            |bv| bv,
        );
    }
    c
}

/// SDDMM as the paper defines it for deep learning (Section IV-B):
/// `D = (A * B^T) ⊙ I[C]` — for each nonzero position (i, j) of the mask
/// `C`, compute the dot product of row i of `A` with row j of `B`.
/// No element-wise scaling by C's values (the indicator form).
pub fn sddmm<T: Scalar>(
    lhs: &Matrix<f32>,
    rhs: &Matrix<f32>,
    mask: &CsrMatrix<T>,
) -> CsrMatrix<f32> {
    assert_eq!(
        lhs.cols(),
        rhs.cols(),
        "dot-product length must agree (B is transposed)"
    );
    assert_eq!(mask.rows(), lhs.rows());
    assert_eq!(mask.cols(), rhs.rows());
    let mut values = Vec::with_capacity(mask.nnz());
    for i in 0..mask.rows() {
        let (cols, _) = mask.row(i);
        let arow = lhs.row(i);
        for &j in cols {
            let brow = rhs.row(j as usize);
            values.push(gpu_sim::lanes::fma_dot(arow, brow, |v| v));
        }
    }
    mask.convert::<f32>().with_values(values)
}

/// SDDMM with element-wise scaling by the mask values — the general form
/// `D = (A * B^T) ⊙ C` from the literature, which the paper notes its
/// approach extends to with "1 load and 1 multiply instruction".
pub fn sddmm_scaled<T: Scalar>(
    lhs: &Matrix<f32>,
    rhs: &Matrix<f32>,
    mask: &CsrMatrix<T>,
) -> CsrMatrix<f32> {
    let d = sddmm(lhs, rhs, mask);
    let scaled: Vec<f32> = d
        .values()
        .iter()
        .zip(mask.values())
        .map(|(&v, &m)| v * m.to_f32())
        .collect();
    d.with_values(scaled)
}

/// Row-wise softmax over the nonzero values of a sparse matrix — the
/// operation the paper wrote a custom kernel for in the sparse Transformer
/// ("we additionally wrote a kernel that computes the softmax function on a
/// sparse matrix"). Max-subtracted for numerical stability; empty rows
/// produce no values.
pub fn sparse_softmax(m: &CsrMatrix<f32>) -> CsrMatrix<f32> {
    let mut values = Vec::with_capacity(m.nnz());
    for i in 0..m.rows() {
        let (_, vals) = m.row(i);
        if vals.is_empty() {
            continue;
        }
        let max = vals.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = vals.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        values.extend(exps.iter().map(|&e| e / sum));
    }
    m.with_values(values)
}

/// Fused bias + ReLU epilogue: `y = max(0, x + bias[row])`, the epilogue the
/// paper fuses into its sparse 1x1 convolutions.
pub fn bias_relu(x: &Matrix<f32>, bias: &[f32]) -> Matrix<f32> {
    assert_eq!(bias.len(), x.rows());
    Matrix::from_fn(x.rows(), x.cols(), |r, c| (x.get(r, c) + bias[r]).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen;

    #[test]
    fn spmm_matches_dense_matmul() {
        let a = gen::uniform(32, 48, 0.7, 1);
        let b = Matrix::<f32>::random(48, 24, 2);
        let sparse_result = spmm(&a, &b);
        let dense_result = a.to_dense().matmul(&b);
        assert!(sparse_result.max_abs_diff(&dense_result) < 1e-4);
    }

    #[test]
    fn spmm_empty_rows_produce_zeros() {
        let a = CsrMatrix::<f32>::empty(4, 8);
        let b = Matrix::<f32>::random(8, 4, 3);
        let c = spmm(&a, &b);
        assert_eq!(c, Matrix::zeros(4, 4));
    }

    #[test]
    fn sddmm_matches_dense_computation() {
        let lhs = Matrix::<f32>::random(16, 32, 4);
        let rhs = Matrix::<f32>::random(20, 32, 5);
        let mask = gen::uniform(16, 20, 0.6, 6);
        let d = sddmm(&lhs, &rhs, &mask);
        // Dense: (lhs * rhs^T) masked.
        let full = lhs.matmul(&rhs.transpose());
        for (i, j, v) in d.iter() {
            assert!((v - full.get(i, j)).abs() < 1e-4, "({i},{j})");
        }
        assert!(d.same_pattern(&mask.convert::<f32>()));
    }

    #[test]
    fn sddmm_scaled_multiplies_mask_values() {
        let lhs = Matrix::<f32>::random(8, 16, 7);
        let rhs = Matrix::<f32>::random(8, 16, 8);
        let mask = gen::uniform(8, 8, 0.5, 9);
        let plain = sddmm(&lhs, &rhs, &mask);
        let scaled = sddmm_scaled(&lhs, &rhs, &mask);
        for ((p, s), m) in plain
            .values()
            .iter()
            .zip(scaled.values())
            .zip(mask.values())
        {
            assert!((p * m - s).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = gen::uniform(32, 64, 0.8, 10);
        let s = sparse_softmax(&m);
        for i in 0..s.rows() {
            let (_, vals) = s.row(i);
            if vals.is_empty() {
                continue;
            }
            let sum: f32 = vals.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {i} sums to {sum}");
            assert!(vals.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let m = gen::uniform(8, 16, 0.5, 11);
        let shifted = m.with_values(m.values().iter().map(|v| v + 100.0).collect());
        let a = sparse_softmax(&m);
        let b = sparse_softmax(&shifted);
        for (x, y) in a.values().iter().zip(b.values()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn bias_relu_clamps() {
        let x = Matrix::<f32>::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]);
        let y = bias_relu(&x, &[0.5, -0.5]);
        assert_eq!(y.as_slice(), &[1.5, 0.0, 2.5, 0.0]);
    }

    use sparse::CsrMatrix;
}
