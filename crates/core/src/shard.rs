//! Sharded multi-device kernels over a simulated [`Fleet`].
//!
//! Two parallelism strategies from the serving/training playbook, both
//! proven **bit-identical** to the single-device reference:
//!
//! * **Row sharding (data parallel)** — [`spmm_row_sharded`] /
//!   [`sddmm_row_sharded`]: each device owns a contiguous, nnz-balanced
//!   block of output rows. Per-row folds are untouched (a row's entire
//!   CSR segment stays on one device), so concatenating the shard outputs
//!   reproduces the single-device result bit for bit. Shards computed on
//!   devices other than 0 are gathered to device 0 over the interconnect.
//!
//! * **K splitting (tensor parallel)** — [`spmm_k_split`]: the reduction
//!   dimension is cut into contiguous column chunks, one per device, and
//!   partial products are combined with a simulated ring all-reduce.
//!   Naively summing independent partials would *not* be bit-identical
//!   (each fma fuses its multiply-add; `round(p0) + round(p1)` differs
//!   from the fused chain), so the functional execution instead folds the
//!   chunks **in rank order** through [`SpmmKernel::with_accumulate`]:
//!   CSR rows are strictly column-sorted, so contiguous K chunks partition
//!   each row's nonzeros into contiguous in-order subsequences, and
//!   seeding each chunk's accumulator from the current output composes the
//!   exact per-row fma chain of the reference kernel. The *timing* model
//!   still runs the chunks concurrently (one stream per device) followed
//!   by the ring all-reduce — the standard modeling split between
//!   numerical semantics and schedule.
//!
//! Every shard launch goes through [`Gpu::sanitize_cached`]: statically
//! audited, sanitized on first sight, and replayed through the
//! [`LaunchCache`] (functional outputs only) on repeat launches.
//!
//! [`Gpu::sanitize_cached`]: gpu_sim::Gpu::sanitize_cached

use crate::config::{SddmmConfig, SpmmConfig};
use crate::error::SputnikError;
use crate::sddmm::{mask_fingerprint, SddmmKernel};
use crate::spmm::{operand_fingerprint, require_finite, SpmmKernel};
use gpu_sim::{Fleet, FleetSync, LaunchCache, LaunchStats, SanitizerReport};
use sparse::{CsrMatrix, Matrix, RowSwizzle, Scalar};

/// The result of a sharded kernel run: the assembled output plus the
/// per-shard launch stats and the resolved fleet timeline.
#[derive(Debug, Clone)]
pub struct ShardedRun<Out> {
    /// The assembled output, bit-identical to the single-device kernel.
    pub output: Out,
    /// Per-shard launch stats, in device order (empty shards skipped).
    pub shard_stats: Vec<LaunchStats>,
    /// How many shard launches were served from the [`LaunchCache`]
    /// (functional replay, memoized sanitizer report).
    pub cache_hits: usize,
    /// The resolved fleet timeline: per-device busy clocks, makespan, and
    /// interconnect counters.
    pub sync: FleetSync,
}

impl<Out> ShardedRun<Out> {
    /// The sum of per-shard kernel times — what a single stream would pay
    /// for the same launches, ignoring transfers. The scaling-efficiency
    /// numerator in `fleetwall`.
    pub fn serial_kernel_us(&self) -> f64 {
        self.shard_stats.iter().map(|s| s.time_us).sum()
    }
}

/// Split `0..a.rows()` into `devices` contiguous ranges balanced by nnz
/// (falling back to an even row split for an all-zero matrix). Ranges may
/// be empty when there are more devices than rows (or the nnz mass is
/// concentrated); empty ranges launch nothing.
pub fn plan_row_shards<T: Scalar>(a: &CsrMatrix<T>, devices: usize) -> Vec<(usize, usize)> {
    assert!(devices > 0, "cannot shard across zero devices");
    let rows = a.rows();
    let total = a.nnz() as u64;
    let mut ranges = Vec::with_capacity(devices);
    let mut r0 = 0usize;
    for d in 0..devices - 1 {
        let r1 = if total == 0 {
            rows * (d + 1) / devices
        } else {
            // Largest prefix whose nnz stays within this device's share.
            let target = total * (d as u64 + 1) / devices as u64;
            let offsets = a.row_offsets();
            let mut r1 = r0;
            while r1 < rows && u64::from(offsets[r1 + 1]) <= target {
                r1 += 1;
            }
            r1
        };
        ranges.push((r0, r1));
        r0 = r1;
    }
    ranges.push((r0, rows));
    ranges
}

/// The contiguous row block `r0..r1` of `a` as a standalone CSR matrix
/// (offsets rebased; columns untouched).
pub fn row_slice<T: Scalar>(
    a: &CsrMatrix<T>,
    r0: usize,
    r1: usize,
) -> Result<CsrMatrix<T>, SputnikError> {
    assert!(r0 <= r1 && r1 <= a.rows(), "row slice out of range");
    let off = a.row_offsets();
    let base = off[r0];
    let (lo, hi) = (off[r0] as usize, off[r1] as usize);
    let offsets: Vec<u32> = off[r0..=r1].iter().map(|&o| o - base).collect();
    Ok(CsrMatrix::from_parts(
        r1 - r0,
        a.cols(),
        offsets,
        a.col_indices()[lo..hi].to_vec(),
        a.values()[lo..hi].to_vec(),
    )?)
}

/// The column band `k0..k1` of `a` as a standalone CSR matrix with columns
/// rebased by `-k0`. Per-row column order is preserved (CSR rows are
/// strictly sorted, and filtering a sorted sequence keeps it sorted), which
/// is what makes rank-ordered K-split accumulation bit-identical.
pub fn k_slice<T: Scalar>(
    a: &CsrMatrix<T>,
    k0: usize,
    k1: usize,
) -> Result<CsrMatrix<T>, SputnikError> {
    assert!(k0 <= k1 && k1 <= a.cols(), "column slice out of range");
    let mut offsets = Vec::with_capacity(a.rows() + 1);
    offsets.push(0u32);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for r in 0..a.rows() {
        let (ci, vi) = a.row(r);
        for (&c, &v) in ci.iter().zip(vi) {
            let c = c as usize;
            if (k0..k1).contains(&c) {
                cols.push((c - k0) as u32);
                vals.push(v);
            }
        }
        offsets.push(cols.len() as u32);
    }
    Ok(CsrMatrix::from_parts(
        a.rows(),
        k1 - k0,
        offsets,
        cols,
        vals,
    )?)
}

/// Reject shard launches whose sanitizer report is not clean: a sharded
/// run must be exactly as safe as the single-device path it replaces.
fn require_clean(report: &SanitizerReport, device: usize) -> Result<(), SputnikError> {
    if report.clean() {
        Ok(())
    } else {
        Err(SputnikError::CorruptOutput {
            kernel: report.kernel.clone(),
            reason: format!(
                "sanitizer reported {} violation(s) on device {device}",
                report.violation_count
            ),
        })
    }
}

fn spmm_swizzle<T: Scalar>(shard: &CsrMatrix<T>, cfg: &SpmmConfig) -> RowSwizzle {
    if cfg.row_swizzle {
        RowSwizzle::by_length_desc(shard)
    } else {
        RowSwizzle::identity(shard.rows())
    }
}

/// Row-sharded (data-parallel) SpMM across a fleet: `A (m x k) * B (k x n)`
/// with contiguous nnz-balanced row blocks, one per device. Each shard is
/// sanitized/audited and launched through the [`LaunchCache`]; shards on
/// devices other than 0 gather their output block to device 0 over the
/// interconnect (`B` is assumed pre-replicated, the data-parallel norm).
/// The assembled output is bit-identical to [`crate::spmm`].
pub fn spmm_row_sharded<T: Scalar>(
    fleet: &mut Fleet,
    cache: &LaunchCache,
    a: &CsrMatrix<T>,
    b: &Matrix<T>,
    cfg: SpmmConfig,
) -> Result<ShardedRun<Matrix<T>>, SputnikError> {
    require_finite("a", a.values())?;
    require_finite("b", b.as_slice())?;
    let n = b.cols();
    let plan = plan_row_shards(a, fleet.num_devices());
    let mut output = Matrix::<T>::zeros(a.rows(), n);
    let mut shard_stats = Vec::new();
    let mut cache_hits = 0usize;
    let mut gathers = Vec::new();
    for (dev, &(r0, r1)) in plan.iter().enumerate() {
        if r0 == r1 {
            continue;
        }
        let shard = row_slice(a, r0, r1)?;
        let swizzle = spmm_swizzle(&shard, &cfg);
        let mut out_d = Matrix::<T>::zeros(shard.rows(), n);
        let (stats, report, hit) = {
            let kernel = SpmmKernel::try_new(&shard, b, &mut out_d, &swizzle, cfg)?;
            fleet
                .gpu(dev)
                .sanitize_cached(cache, operand_fingerprint(&shard, n), &kernel)?
        };
        require_clean(&report, dev)?;
        cache_hits += usize::from(hit);
        fleet.submit(dev, stats.time_us);
        shard_stats.push(stats);
        if dev != 0 {
            let bytes = (out_d.rows() * n) as u64 * u64::from(T::BYTES);
            gathers.push(fleet.transfer(dev, 0, bytes, "gather C row-shard"));
        }
        output.as_mut_slice()[r0 * n..r1 * n].copy_from_slice(out_d.as_slice());
    }
    for ev in gathers {
        fleet.wait_event(0, ev);
    }
    let sync = fleet.sync()?;
    Ok(ShardedRun {
        output,
        shard_stats,
        cache_hits,
        sync,
    })
}

/// Row-sharded (data-parallel) SDDMM across a fleet: mask rows are split
/// into contiguous nnz-balanced blocks; each device computes the sampled
/// dot products for its block against its slice of `lhs` rows and the full
/// `rhs`. Per-shard value vectors concatenate in row order (CSR values are
/// laid out row-major), so the assembled output is bit-identical to
/// [`crate::sddmm`].
pub fn sddmm_row_sharded<T: Scalar>(
    fleet: &mut Fleet,
    cache: &LaunchCache,
    lhs: &Matrix<T>,
    rhs: &Matrix<T>,
    mask: &CsrMatrix<T>,
    cfg: SddmmConfig,
) -> Result<ShardedRun<CsrMatrix<T>>, SputnikError> {
    require_finite("lhs", lhs.as_slice())?;
    require_finite("rhs", rhs.as_slice())?;
    require_finite("mask", mask.values())?;
    let k = lhs.cols();
    let plan = plan_row_shards(mask, fleet.num_devices());
    let mut values = vec![T::zero(); mask.nnz()];
    let mut shard_stats = Vec::new();
    let mut cache_hits = 0usize;
    let mut gathers = Vec::new();
    for (dev, &(r0, r1)) in plan.iter().enumerate() {
        if r0 == r1 {
            continue;
        }
        let shard_mask = row_slice(mask, r0, r1)?;
        let lhs_shard = Matrix::from_vec(r1 - r0, k, lhs.as_slice()[r0 * k..r1 * k].to_vec());
        let swizzle = if cfg.row_swizzle {
            RowSwizzle::by_length_desc(&shard_mask)
        } else {
            RowSwizzle::identity(shard_mask.rows())
        };
        let mut vals_d = vec![T::zero(); shard_mask.nnz()];
        let (stats, report, hit) = {
            let kernel =
                SddmmKernel::try_new(&lhs_shard, rhs, &shard_mask, &mut vals_d, &swizzle, cfg)?;
            fleet
                .gpu(dev)
                .sanitize_cached(cache, mask_fingerprint(&shard_mask, k), &kernel)?
        };
        require_clean(&report, dev)?;
        cache_hits += usize::from(hit);
        fleet.submit(dev, stats.time_us);
        shard_stats.push(stats);
        if dev != 0 && !vals_d.is_empty() {
            let bytes = vals_d.len() as u64 * u64::from(T::BYTES);
            gathers.push(fleet.transfer(dev, 0, bytes, "gather SDDMM value shard"));
        }
        let base = mask.row_offsets()[r0] as usize;
        values[base..base + vals_d.len()].copy_from_slice(&vals_d);
    }
    for ev in gathers {
        fleet.wait_event(0, ev);
    }
    let sync = fleet.sync()?;
    Ok(ShardedRun {
        output: mask.with_values(values),
        shard_stats,
        cache_hits,
        sync,
    })
}

/// K-split (tensor-parallel) SpMM across a fleet: the reduction dimension
/// is cut into contiguous column chunks, one per device, each multiplying
/// its band of `A` against its block of `B` rows; partial outputs are
/// combined with a simulated ring all-reduce of the full `C` payload.
///
/// Functionally the chunks fold in rank order through
/// [`SpmmKernel::with_accumulate`], composing the reference kernel's exact
/// per-row fma chains — see the module docs for why independent partials
/// would not be bit-identical. Rejected for `fused_bias_relu` configs: a
/// nonlinear epilogue cannot be applied per-chunk.
pub fn spmm_k_split<T: Scalar>(
    fleet: &mut Fleet,
    cache: &LaunchCache,
    a: &CsrMatrix<T>,
    b: &Matrix<T>,
    cfg: SpmmConfig,
) -> Result<ShardedRun<Matrix<T>>, SputnikError> {
    if cfg.fused_bias_relu {
        return Err(SputnikError::IllegalConfig {
            reason: "k-split cannot compose with fused_bias_relu: the epilogue is nonlinear, \
                     so per-chunk application would differ from the single-device kernel"
                .into(),
        });
    }
    require_finite("a", a.values())?;
    require_finite("b", b.as_slice())?;
    let n = b.cols();
    let k = a.cols();
    let devices = fleet.num_devices();
    let mut output = Matrix::<T>::zeros(a.rows(), n);
    let mut shard_stats = Vec::new();
    let mut cache_hits = 0usize;
    for dev in 0..devices {
        let (k0, k1) = (k * dev / devices, k * (dev + 1) / devices);
        if k0 == k1 {
            continue;
        }
        let chunk = k_slice(a, k0, k1)?;
        let b_chunk = Matrix::from_vec(k1 - k0, n, b.as_slice()[k0 * n..k1 * n].to_vec());
        let swizzle = spmm_swizzle(&chunk, &cfg);
        let (stats, report, hit) = {
            let kernel = SpmmKernel::try_new(&chunk, &b_chunk, &mut output, &swizzle, cfg)?
                .with_accumulate();
            fleet
                .gpu(dev)
                .sanitize_cached(cache, operand_fingerprint(&chunk, n), &kernel)?
        };
        require_clean(&report, dev)?;
        cache_hits += usize::from(hit);
        fleet.submit(dev, stats.time_us);
        shard_stats.push(stats);
    }
    fleet.ring_all_reduce((a.rows() * n) as u64 * u64::from(T::BYTES));
    let sync = fleet.sync()?;
    Ok(ShardedRun {
        output,
        shard_stats,
        cache_hits,
        sync,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sddmm::sddmm;
    use crate::spmm::spmm;
    use gpu_sim::{Gpu, LinkProfile};
    use sparse::gen;

    fn fleet(n: usize) -> Fleet {
        Fleet::v100(n)
    }

    fn assert_bits_eq(got: &Matrix<f32>, want: &Matrix<f32>, what: &str) {
        assert_eq!(got.rows(), want.rows(), "{what}: row count");
        assert_eq!(got.cols(), want.cols(), "{what}: col count");
        for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "{what}: element {i} differs ({g} vs {w})"
            );
        }
    }

    #[test]
    fn row_shard_plan_covers_rows_and_balances_nnz() {
        let a = gen::power_law(128, 96, 12.0, 1.5, 7);
        for devices in [1, 2, 4, 8] {
            let plan = plan_row_shards(&a, devices);
            assert_eq!(plan.len(), devices);
            assert_eq!(plan[0].0, 0);
            assert_eq!(plan[devices - 1].1, a.rows());
            for w in plan.windows(2) {
                assert_eq!(w[0].1, w[1].0, "shards must be contiguous");
            }
            // Each shard's nnz stays within one max-row-length of the ideal
            // share: the greedy cut can only overshoot by a row boundary.
            let ideal = a.nnz() as f64 / devices as f64;
            for &(r0, r1) in &plan {
                let nnz = (a.row_offsets()[r1] - a.row_offsets()[r0]) as f64;
                assert!(nnz <= ideal + a.max_row_len() as f64);
            }
        }
    }

    #[test]
    fn row_and_k_slices_partition_the_matrix() {
        let a = gen::uniform(60, 44, 0.8, 11);
        let plan = plan_row_shards(&a, 3);
        let total: usize = plan
            .iter()
            .map(|&(r0, r1)| row_slice(&a, r0, r1).unwrap().nnz())
            .sum();
        assert_eq!(total, a.nnz());

        let cuts = [0, 15, 29, 44];
        let mut seen = 0;
        for w in cuts.windows(2) {
            let band = k_slice(&a, w[0], w[1]).unwrap();
            assert_eq!(band.rows(), a.rows());
            assert_eq!(band.cols(), w[1] - w[0]);
            seen += band.nnz();
        }
        assert_eq!(seen, a.nnz());
    }

    #[test]
    fn spmm_row_sharded_is_bit_identical_to_single_device() {
        let gpu = Gpu::v100();
        for &(m, k, n, sp) in &[(64usize, 96usize, 32usize, 0.7f64), (128, 128, 64, 0.9)] {
            let a = gen::uniform(m, k, sp, 3);
            let b = Matrix::<f32>::random(k, n, 5);
            for swizzle in [false, true] {
                let cfg = SpmmConfig {
                    row_swizzle: swizzle,
                    ..SpmmConfig::default()
                };
                let (reference, _) = spmm(&gpu, &a, &b, cfg);
                for devices in [1, 2, 4] {
                    let cache = LaunchCache::new();
                    let mut f = fleet(devices);
                    let run = spmm_row_sharded(&mut f, &cache, &a, &b, cfg).unwrap();
                    assert_bits_eq(
                        &run.output,
                        &reference,
                        &format!("spmm {m}x{k}x{n} D={devices} swizzle={swizzle}"),
                    );
                    if devices > 1 {
                        assert!(run.sync.transfer_bytes > 0, "gathers must cross the link");
                    }
                }
            }
        }
    }

    #[test]
    fn sddmm_row_sharded_is_bit_identical_to_single_device() {
        let gpu = Gpu::v100();
        let mask = gen::uniform(96, 80, 0.85, 17);
        let lhs = Matrix::<f32>::random(96, 64, 19);
        let rhs = Matrix::<f32>::random(80, 64, 23);
        for swizzle in [false, true] {
            let cfg = SddmmConfig {
                row_swizzle: swizzle,
                ..SddmmConfig::default()
            };
            let (reference, _) = sddmm(&gpu, &lhs, &rhs, &mask, cfg);
            for devices in [1, 2, 4] {
                let cache = LaunchCache::new();
                let mut f = fleet(devices);
                let run = sddmm_row_sharded(&mut f, &cache, &lhs, &rhs, &mask, cfg).unwrap();
                assert!(run.output.same_pattern(&reference));
                for (i, (g, w)) in run
                    .output
                    .values()
                    .iter()
                    .zip(reference.values())
                    .enumerate()
                {
                    assert_eq!(g.to_bits(), w.to_bits(), "sddmm value {i} D={devices}");
                }
            }
        }
    }

    #[test]
    fn spmm_k_split_is_bit_identical_to_single_device() {
        let gpu = Gpu::v100();
        for &(m, k, n, sp) in &[(64usize, 96usize, 32usize, 0.7f64), (100, 76, 40, 0.8)] {
            let a = gen::uniform(m, k, sp, 29);
            let b = Matrix::<f32>::random(k, n, 31);
            for swizzle in [false, true] {
                let cfg = SpmmConfig {
                    row_swizzle: swizzle,
                    ..SpmmConfig::default()
                };
                let (reference, _) = spmm(&gpu, &a, &b, cfg);
                for devices in [1, 2, 4] {
                    let cache = LaunchCache::new();
                    let mut f = fleet(devices);
                    let run = spmm_k_split(&mut f, &cache, &a, &b, cfg).unwrap();
                    assert_bits_eq(
                        &run.output,
                        &reference,
                        &format!("k-split {m}x{k}x{n} D={devices} swizzle={swizzle}"),
                    );
                    if devices > 1 {
                        // Ring all-reduce: 2(N-1) steps on each of N devices.
                        assert_eq!(
                            run.sync.transfers,
                            2 * (devices as u64 - 1) * devices as u64
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn k_split_rejects_fused_epilogue() {
        let a = gen::uniform(32, 32, 0.5, 1);
        let b = Matrix::<f32>::random(32, 32, 2);
        let cfg = SpmmConfig {
            fused_bias_relu: true,
            ..SpmmConfig::default()
        };
        let cache = LaunchCache::new();
        let mut f = fleet(2);
        let err = spmm_k_split(&mut f, &cache, &a, &b, cfg).unwrap_err();
        assert!(matches!(err, SputnikError::IllegalConfig { .. }));
    }

    #[test]
    fn sharded_relaunch_replays_every_shard_from_the_cache() {
        let a = gen::power_law(96, 64, 10.0, 1.5, 41);
        let b = Matrix::<f32>::random(64, 48, 43);
        let cfg = SpmmConfig::default();
        let cache = LaunchCache::new();

        let mut f = fleet(4);
        let cold = spmm_row_sharded(&mut f, &cache, &a, &b, cfg).unwrap();
        assert_eq!(cold.cache_hits, 0);

        let mut f = fleet(4);
        let warm = spmm_row_sharded(&mut f, &cache, &a, &b, cfg).unwrap();
        assert_eq!(warm.cache_hits, warm.shard_stats.len());
        assert_bits_eq(&warm.output, &cold.output, "replayed run");
        assert!(warm.sync.transfer_bytes > 0);
    }

    #[test]
    fn heterogeneous_fleet_replays_do_not_cross_devices() {
        // Two fleets with identical device *names* but different silicon:
        // the arch fingerprint in the launch key must keep their cache
        // entries apart (the stats would disagree).
        let a = gen::uniform(64, 64, 0.8, 53);
        let b = Matrix::<f32>::random(64, 32, 59);
        let cfg = SpmmConfig::default();
        let cache = LaunchCache::new();

        let big = gpu_sim::DeviceConfig::v100();
        let mut small = gpu_sim::DeviceConfig::v100();
        small.num_sms = 20;

        let mut f1 = Fleet::homogeneous(&big, 2, LinkProfile::nvlink());
        let cold = spmm_row_sharded(&mut f1, &cache, &a, &b, cfg).unwrap();
        assert_eq!(cold.cache_hits, 0);

        let mut f2 = Fleet::homogeneous(&small, 2, LinkProfile::nvlink());
        let cross = spmm_row_sharded(&mut f2, &cache, &a, &b, cfg).unwrap();
        assert_eq!(
            cross.cache_hits, 0,
            "a different arch must never replay another device's stats"
        );
        assert_bits_eq(&cross.output, &cold.output, "hetero fleet output");
    }

    #[test]
    fn more_devices_than_rows_still_assembles_correctly() {
        let gpu = Gpu::v100();
        let a = gen::uniform(3, 40, 0.6, 61);
        let b = Matrix::<f32>::random(40, 16, 67);
        let cfg = SpmmConfig::default();
        let (reference, _) = spmm(&gpu, &a, &b, cfg);
        let cache = LaunchCache::new();
        let mut f = fleet(8);
        let run = spmm_row_sharded(&mut f, &cache, &a, &b, cfg).unwrap();
        assert_bits_eq(&run.output, &reference, "tiny matrix on 8 devices");
        assert!(run.shard_stats.len() <= 3);
    }
}
