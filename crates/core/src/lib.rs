//! # sputnik — sparse GPU kernels for deep learning, in simulation
//!
//! Rust reproduction of the kernels from *Sparse GPU Kernels for Deep
//! Learning* (Gale, Zaharia, Young, Elsen — SC 2020): SpMM and SDDMM with
//! hierarchical 1-D tiling, subwarp tiling, reverse offset memory alignment
//! (ROMA), row-swizzle load balancing, index pre-scaling, residue unrolling,
//! and mixed-precision variants — all executing against the `gpu-sim`
//! simulated V100.
pub mod batched;
pub mod config;
pub mod dispatch;
pub mod error;
pub mod joint;
pub mod plan;
pub mod reference;
pub mod roma;
pub mod sddmm;
pub mod shard;
pub mod softmax;
pub mod spmm;
pub mod transpose;
pub mod tune;

pub use batched::{
    sddmm_batched, sddmm_batched_cached, sddmm_batched_dispatch, spmm_batched, spmm_batched_cached,
    spmm_batched_dispatch, BatchedResult, DispatchedBatch,
};
pub use config::{SddmmConfig, SpmmConfig};
pub use dispatch::{
    launch_audited, sanitize, sanitize_cached, spmm_cached, DegradationStats, DispatchPolicy,
    DispatchReport, FallbackSpmmKernel, Rung,
};
pub use error::SputnikError;
pub use joint::{
    joint_heuristic, joint_spmm, joint_spmm_profile, joint_spmm_profile_cached, try_joint_spmm,
    JointSpmmKernel, BUF_LUT,
};
pub use plan::{
    attention_configs, sparse_attention_fused, sparse_attention_fused_profile,
    sparse_attention_unfused, try_sparse_attention_fused, AttentionConfigs, FusedAttention,
    FusedAttentionTime, FusionDecision, FusionPlanner, PlanOp,
};
pub use roma::MemoryAligner;
pub use sddmm::{sddmm, sddmm_profile, sddmm_profile_cached, try_sddmm, SddmmKernel};
pub use shard::{
    k_slice, plan_row_shards, row_slice, sddmm_row_sharded, spmm_k_split, spmm_row_sharded,
    ShardedRun,
};
pub use softmax::{
    sparse_softmax, sparse_softmax_profile, sparse_softmax_scaled, sparse_softmax_scaled_profile,
    SparseSoftmaxKernel,
};
pub use spmm::{spmm, spmm_profile, spmm_profile_cached, try_spmm, SpmmKernel};
pub use transpose::{CachedTranspose, PermuteKernel};
pub use tune::{AutoTuner, ProblemClass, TuneResult};
