//! Fault-tolerant SpMM dispatch: detection guards plus a
//! retry-with-degradation ladder.
//!
//! Production serving cannot crash because one kernel launch hit a transient
//! device fault. This module wraps the Sputnik SpMM in a dispatcher that
//!
//! 1. validates inputs once (shapes, finiteness) — violations here are
//!    *deterministic* and returned immediately, no rung can fix them;
//! 2. launches the requested Sputnik configuration and checks the output
//!    with two guards: a NaN/Inf scan and an ABFT-style checksum
//!    (`sum(C) == sum_nz(a_val * rowsum(B)[a_col])`, accumulated in f64);
//! 3. on failure, descends a degradation ladder with bounded retries:
//!    [`Rung::Sputnik`] (retry the same config) → [`Rung::Heuristic`]
//!    (the paper's [`SpmmConfig::heuristic`] selection) → [`Rung::Fallback`]
//!    (an internal row-per-block kernel whose name contains no `"sputnik"`,
//!    so name-matched fault plans spare it) → [`Rung::CpuReference`]
//!    (host execution, always available);
//! 4. records which rung served the call, every failed attempt, and the
//!    simulated backoff spent, in a [`DispatchReport`].
//!
//! The guards run on the host against the functional output and never touch
//! the simulated [`LaunchStats`]: with an empty
//! [`FaultPlan`](gpu_sim::FaultPlan), dispatch returns statistics identical
//! to a direct [`crate::spmm`] call.

use crate::config::SpmmConfig;
use crate::error::{is_transient, SputnikError};
use crate::reference;
use crate::spmm::{
    operand_fingerprint, require_finite, SpmmKernel, BUF_A_INDICES, BUF_A_OFFSETS, BUF_A_VALUES,
    BUF_B, BUF_C,
};
use gpu_sim::{
    AccessBound, AccessPattern, AlignmentFacts, BarrierFacts, BlockContext, BufferBound,
    BufferSpec, Dim3, Fingerprint, Gpu, Kernel, LaunchCache, LaunchStats, StageBound, StaticFacts,
    SyncUnsafeSlice,
};
use sparse::{CsrMatrix, Matrix, RowSwizzle, Scalar};

/// One rung of the degradation ladder, from fastest to most conservative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// The requested Sputnik configuration.
    Sputnik,
    /// The paper's heuristic configuration for this problem shape.
    Heuristic,
    /// The internal row-per-block fallback kernel (cusparse-style).
    Fallback,
    /// Host execution of the golden reference.
    CpuReference,
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rung::Sputnik => write!(f, "sputnik"),
            Rung::Heuristic => write!(f, "heuristic"),
            Rung::Fallback => write!(f, "fallback"),
            Rung::CpuReference => write!(f, "cpu-reference"),
        }
    }
}

/// Tuning knobs for the dispatcher.
#[derive(Debug, Clone)]
pub struct DispatchPolicy {
    /// Attempts per GPU rung (first try + retries). Retries are only spent
    /// on transient errors; deterministic failures skip straight to the
    /// next rung.
    pub attempts_per_rung: u32,
    /// Simulated backoff before the r-th retry of a rung, in microseconds:
    /// `backoff_base_us << r`, accumulated into the report (no host sleep).
    pub backoff_base_us: f64,
    /// Scan functional outputs for NaN/Inf.
    pub check_finite: bool,
    /// Verify the ABFT row-sum checksum on functional outputs.
    pub check_checksum: bool,
    /// Relative tolerance for the checksum guard. The guard compares an
    /// f64 shadow sum against f32 kernel arithmetic, so this must absorb
    /// rounding differences — it targets gross corruption, not ULPs.
    pub checksum_rel_tol: f64,
}

impl Default for DispatchPolicy {
    fn default() -> Self {
        Self {
            attempts_per_rung: 2,
            backoff_base_us: 50.0,
            check_finite: true,
            check_checksum: true,
            checksum_rel_tol: 1e-3,
        }
    }
}

/// A failed attempt, kept for post-mortems.
#[derive(Debug, Clone)]
pub struct Attempt {
    pub rung: Rung,
    pub error: SputnikError,
}

/// What happened during one dispatched call.
#[derive(Debug, Clone)]
pub struct DispatchReport {
    /// The rung that produced the returned result.
    pub served_by: Rung,
    /// Launch statistics of the serving launch (`None` when the CPU served).
    pub stats: Option<LaunchStats>,
    /// Every failed attempt, in order.
    pub attempts: Vec<Attempt>,
    /// Total simulated retry backoff, microseconds.
    pub backoff_us: f64,
}

impl DispatchReport {
    /// True when the requested configuration served without degradation.
    pub fn clean(&self) -> bool {
        self.served_by == Rung::Sputnik && self.attempts.is_empty()
    }
}

/// Aggregate rung usage across many dispatched calls.
///
/// [`DegradationStats::record`] also mirrors each call into the process-wide
/// [`gpu_sim::metrics`] registry as monotonic per-rung counters (see
/// [`DegradationStats::RUNG_COUNTERS`]), so serving sweeps and plain kernel
/// sweeps share one degradation dashboard: any snapshot of the global
/// registry shows how many calls each rung served, regardless of which
/// subsystem dispatched them.
#[derive(Debug, Clone, Default)]
pub struct DegradationStats {
    pub calls: u64,
    pub served: [u64; 4],
    pub failed_attempts: u64,
    pub backoff_us: f64,
}

impl DegradationStats {
    /// Global-metrics counter name for each rung, indexed by `Rung as usize`.
    pub const RUNG_COUNTERS: [&'static str; 4] = [
        "dispatch_rung_sputnik",
        "dispatch_rung_heuristic",
        "dispatch_rung_fallback",
        "dispatch_rung_cpu_reference",
    ];

    pub fn record(&mut self, report: &DispatchReport) {
        self.calls += 1;
        self.served[report.served_by as usize] += 1;
        self.failed_attempts += report.attempts.len() as u64;
        self.backoff_us += report.backoff_us;
        gpu_sim::metrics::global().incr(Self::RUNG_COUNTERS[report.served_by as usize], 1);
    }

    /// Fraction of calls served by the requested Sputnik configuration.
    pub fn clean_fraction(&self) -> f64 {
        if self.calls == 0 {
            return 1.0;
        }
        self.served[Rung::Sputnik as usize] as f64 / self.calls as f64
    }
}

/// Fault-tolerant SpMM: `A (sparse) * B (dense)` through the degradation
/// ladder. Returns the output and a report of which rung served.
///
/// Errors are returned only for deterministic input violations (shape
/// mismatch, non-finite operands): anything transient degrades to a slower
/// rung, and the CPU reference rung cannot fail.
pub fn spmm<T: Scalar>(
    gpu: &Gpu,
    a: &CsrMatrix<T>,
    b: &Matrix<T>,
    cfg: SpmmConfig,
    policy: &DispatchPolicy,
) -> Result<(Matrix<T>, DispatchReport), SputnikError> {
    spmm_with_cache(gpu, None, a, b, cfg, policy)
}

/// [`spmm`] with every GPU rung consulting a cross-launch [`LaunchCache`].
/// A hit skips the cost simulation and replays only the functional output
/// (via [`Gpu::try_launch_cached`]), so the detection guards still inspect a
/// freshly computed `C`; the returned statistics are the memoized ones,
/// bit-identical to a cold launch.
pub fn spmm_cached<T: Scalar>(
    gpu: &Gpu,
    cache: &LaunchCache,
    a: &CsrMatrix<T>,
    b: &Matrix<T>,
    cfg: SpmmConfig,
    policy: &DispatchPolicy,
) -> Result<(Matrix<T>, DispatchReport), SputnikError> {
    spmm_with_cache(gpu, Some(cache), a, b, cfg, policy)
}

fn spmm_with_cache<T: Scalar>(
    gpu: &Gpu,
    cache: Option<&LaunchCache>,
    a: &CsrMatrix<T>,
    b: &Matrix<T>,
    cfg: SpmmConfig,
    policy: &DispatchPolicy,
) -> Result<(Matrix<T>, DispatchReport), SputnikError> {
    if a.cols() != b.rows() {
        return Err(SputnikError::ShapeMismatch {
            expected: format!("B with {} rows", a.cols()),
            found: format!("{}x{}", b.rows(), b.cols()),
            context: "dispatch spmm inner dimension",
        });
    }
    if b.layout() != sparse::Layout::RowMajor {
        return Err(SputnikError::IllegalConfig {
            reason: "Sputnik uses row-major dense operands".into(),
        });
    }
    require_finite("a", a.values())?;
    require_finite("b", b.as_slice())?;

    // Shared by every checksum evaluation: per-row sums of B, in f64.
    let b_rowsums = checksum_b_rowsums(b);
    let mut attempts = Vec::new();
    let mut backoff_us = 0.0f64;

    // GPU rungs: requested config, heuristic config, internal fallback.
    let heuristic = SpmmConfig::heuristic::<T>(b.cols());
    let gpu_rungs: Vec<(Rung, Option<SpmmConfig>)> = {
        let mut r = vec![(Rung::Sputnik, Some(cfg))];
        if heuristic != cfg {
            r.push((Rung::Heuristic, Some(heuristic)));
        }
        r.push((Rung::Fallback, None));
        r
    };

    for (rung, rung_cfg) in gpu_rungs {
        for attempt in 0..policy.attempts_per_rung {
            if attempt > 0 {
                backoff_us += policy.backoff_base_us * f64::from(1u32 << (attempt - 1));
            }
            let result = match rung_cfg {
                Some(c) => launch_sputnik(gpu, cache, a, b, c),
                None => launch_fallback(gpu, cache, a, b),
            };
            match result.and_then(|(out, stats)| {
                check_output(&out, a, &b_rowsums, rung_cfg, policy, &stats.kernel)?;
                Ok((out, stats))
            }) {
                Ok((out, stats)) => {
                    if rung != Rung::Sputnik {
                        gpu_sim::metrics::global().incr("dispatch_degraded", 1);
                        if gpu_sim::trace::enabled() {
                            gpu_sim::trace::instant(
                                "dispatch",
                                "dispatch",
                                &format!("degraded: served by {rung} ({})", stats.kernel),
                            );
                        }
                    }
                    let report = DispatchReport {
                        served_by: rung,
                        stats: Some(stats),
                        attempts: std::mem::take(&mut attempts),
                        backoff_us,
                    };
                    return Ok((out, report));
                }
                Err(err) => {
                    let transient = is_transient(&err);
                    gpu_sim::metrics::global().incr("dispatch_failed_attempts", 1);
                    if gpu_sim::trace::enabled() {
                        gpu_sim::trace::instant(
                            "dispatch",
                            "dispatch",
                            &format!("rung {rung} attempt {attempt} failed: {err}"),
                        );
                    }
                    attempts.push(Attempt { rung, error: err });
                    if !transient {
                        // Deterministic failure: retrying the same rung
                        // cannot help.
                        break;
                    }
                }
            }
        }
    }

    // Last rung: host execution. Identical accumulation order to the
    // fallback kernel, so results remain bit-stable across rungs for f32.
    gpu_sim::metrics::global().incr("dispatch_degraded", 1);
    if gpu_sim::trace::enabled() {
        gpu_sim::trace::instant("dispatch", "dispatch", "degraded: served by cpu-reference");
    }
    let out = reference_as_t::<T>(a, b);
    let report = DispatchReport {
        served_by: Rung::CpuReference,
        stats: None,
        attempts,
        backoff_us,
    };
    Ok((out, report))
}

/// Run the requested Sputnik SpMM configuration under the gpu-sim sanitizer
/// (the simulator's `compute-sanitizer` analogue; see
/// [`gpu_sim::sanitizer`]): a functional launch whose racecheck / memcheck /
/// aligncheck / lint findings come back in a
/// [`SanitizerReport`](gpu_sim::SanitizerReport) next to the usual stats.
/// Unlike [`spmm`], there is no degradation ladder — the point is to check
/// the requested kernel, not to hide its failures.
pub fn sanitize<T: Scalar>(
    gpu: &Gpu,
    a: &CsrMatrix<T>,
    b: &Matrix<T>,
    cfg: SpmmConfig,
) -> Result<(Matrix<T>, LaunchStats, gpu_sim::SanitizerReport), SputnikError> {
    if a.cols() != b.rows() {
        return Err(SputnikError::ShapeMismatch {
            expected: format!("B with {} rows", a.cols()),
            found: format!("{}x{}", b.rows(), b.cols()),
            context: "sanitize spmm inner dimension",
        });
    }
    if b.layout() != sparse::Layout::RowMajor {
        return Err(SputnikError::IllegalConfig {
            reason: "Sputnik uses row-major dense operands".into(),
        });
    }
    let swizzle = if cfg.row_swizzle {
        RowSwizzle::by_length_desc(a)
    } else {
        RowSwizzle::identity(a.rows())
    };
    let mut out = Matrix::<T>::zeros(a.rows(), b.cols());
    let (stats, report) = {
        let kernel = SpmmKernel::try_new(a, b, &mut out, &swizzle, cfg)?;
        gpu.sanitize(&kernel)?
    };
    Ok((out, stats, report))
}

/// [`sanitize`] consulting a cross-launch [`LaunchCache`]: a
/// fingerprint-identical launch that was already sanitized skips the whole
/// dynamic pass (the report is replayed from the cache, the functional
/// output recomputed). The extra `bool` reports whether the cache served.
pub fn sanitize_cached<T: Scalar>(
    gpu: &Gpu,
    cache: &LaunchCache,
    a: &CsrMatrix<T>,
    b: &Matrix<T>,
    cfg: SpmmConfig,
) -> Result<(Matrix<T>, LaunchStats, gpu_sim::SanitizerReport, bool), SputnikError> {
    if a.cols() != b.rows() {
        return Err(SputnikError::ShapeMismatch {
            expected: format!("B with {} rows", a.cols()),
            found: format!("{}x{}", b.rows(), b.cols()),
            context: "sanitize spmm inner dimension",
        });
    }
    if b.layout() != sparse::Layout::RowMajor {
        return Err(SputnikError::IllegalConfig {
            reason: "Sputnik uses row-major dense operands".into(),
        });
    }
    let swizzle = if cfg.row_swizzle {
        RowSwizzle::by_length_desc(a)
    } else {
        RowSwizzle::identity(a.rows())
    };
    let mut out = Matrix::<T>::zeros(a.rows(), b.cols());
    let (stats, report, cached) = {
        let kernel = SpmmKernel::try_new(a, b, &mut out, &swizzle, cfg)?;
        gpu.sanitize_cached(cache, operand_fingerprint(a, b.cols()), &kernel)?
    };
    Ok((out, stats, report, cached))
}

/// Gate a kernel launch on the static auditor (see
/// [`gpu_sim::static_check`]): a `Refuted` verdict rejects the launch with a
/// typed [`SputnikError::StaticallyRefuted`] *before* the simulator executes
/// a single block. Inside the dispatch ladder this is a deterministic
/// failure, so the rung is abandoned immediately and the ladder degrades.
pub(crate) fn audit_launch(gpu: &Gpu, kernel: &dyn Kernel) -> Result<(), SputnikError> {
    let audit = gpu.audit(kernel);
    if let Some(finding) = audit.refutation() {
        gpu_sim::metrics::global().incr("dispatch_static_refuted", 1);
        if gpu_sim::trace::enabled() {
            gpu_sim::trace::instant(
                "dispatch",
                "dispatch",
                &format!("statically refuted: {} ({})", audit.kernel, finding.detail),
            );
        }
        return Err(SputnikError::StaticallyRefuted {
            kernel: audit.kernel.clone(),
            class: finding.class.name().to_string(),
            detail: finding.detail.clone(),
        });
    }
    Ok(())
}

/// Launch any kernel through the dispatch layer's static-audit gate:
/// `Refuted` launches come back as [`SputnikError::StaticallyRefuted`]
/// without executing a single block; everything else launches normally.
/// This is the same gate every internal ladder rung passes through —
/// exposed so out-of-ladder callers (tests, tools, new subsystems) reject
/// provably bad launches just as early.
pub fn launch_audited(gpu: &Gpu, kernel: &dyn Kernel) -> Result<LaunchStats, SputnikError> {
    audit_launch(gpu, kernel)?;
    gpu.try_launch(kernel).map_err(SputnikError::from)
}

fn launch_sputnik<T: Scalar>(
    gpu: &Gpu,
    cache: Option<&LaunchCache>,
    a: &CsrMatrix<T>,
    b: &Matrix<T>,
    cfg: SpmmConfig,
) -> Result<(Matrix<T>, LaunchStats), SputnikError> {
    let swizzle = if cfg.row_swizzle {
        RowSwizzle::by_length_desc(a)
    } else {
        RowSwizzle::identity(a.rows())
    };
    let mut out = Matrix::<T>::zeros(a.rows(), b.cols());
    let stats = {
        let kernel = SpmmKernel::try_new(a, b, &mut out, &swizzle, cfg)?;
        audit_launch(gpu, &kernel)?;
        match cache {
            Some(c) => {
                gpu.try_launch_cached(c, operand_fingerprint(a, b.cols()), &kernel)?
                    .0
            }
            None => gpu.try_launch(&kernel)?,
        }
    };
    Ok((out, stats))
}

fn launch_fallback<T: Scalar>(
    gpu: &Gpu,
    cache: Option<&LaunchCache>,
    a: &CsrMatrix<T>,
    b: &Matrix<T>,
) -> Result<(Matrix<T>, LaunchStats), SputnikError> {
    let mut out = Matrix::<T>::zeros(a.rows(), b.cols());
    let stats = {
        let kernel = FallbackSpmmKernel::new(a, b, &mut out);
        audit_launch(gpu, &kernel)?;
        match cache {
            Some(c) => {
                gpu.try_launch_cached(c, operand_fingerprint(a, b.cols()), &kernel)?
                    .0
            }
            None => gpu.try_launch(&kernel)?,
        }
    };
    Ok((out, stats))
}

/// CPU rung: the golden reference, converted to the storage type.
fn reference_as_t<T: Scalar>(a: &CsrMatrix<T>, b: &Matrix<T>) -> Matrix<T> {
    let c32 = reference::spmm(a, &b.to_f32());
    let mut out = Matrix::<T>::zeros(a.rows(), b.cols());
    for (o, &v) in out.as_mut_slice().iter_mut().zip(c32.as_slice()) {
        *o = T::from_f32(v);
    }
    out
}

/// Per-row sums of B in f64, the checksum's precomputed ingredient.
fn checksum_b_rowsums<T: Scalar>(b: &Matrix<T>) -> Vec<f64> {
    let n = b.cols();
    let data = b.as_slice();
    (0..b.rows())
        .map(|r| {
            data[r * n..(r + 1) * n]
                .iter()
                .map(|v| f64::from(v.to_f32()))
                .sum()
        })
        .collect()
}

/// Detection guards: NaN/Inf scan plus the ABFT row-sum checksum
/// `sum(C) == sum over nonzeros of a_val * rowsum(B)[a_col]`.
fn check_output<T: Scalar>(
    out: &Matrix<T>,
    a: &CsrMatrix<T>,
    b_rowsums: &[f64],
    cfg: Option<SpmmConfig>,
    policy: &DispatchPolicy,
    kernel: &str,
) -> Result<(), SputnikError> {
    if policy.check_finite {
        for v in out.as_slice() {
            if !v.to_f32().is_finite() {
                return Err(SputnikError::CorruptOutput {
                    kernel: kernel.to_string(),
                    reason: "non-finite value in output".into(),
                });
            }
        }
    }
    // The checksum is a linear identity: a fused ReLU epilogue breaks it.
    let nonlinear = cfg.is_some_and(|c| c.fused_bias_relu);
    if policy.check_checksum && !nonlinear {
        let expected: f64 = a
            .col_indices()
            .iter()
            .zip(a.values())
            .map(|(&col, v)| f64::from(v.to_f32()) * b_rowsums[col as usize])
            .sum();
        let actual: f64 = out.as_slice().iter().map(|v| f64::from(v.to_f32())).sum();
        // Scale-aware tolerance: rounding grows with the mass being summed.
        let scale: f64 = a
            .col_indices()
            .iter()
            .zip(a.values())
            .map(|(&col, v)| (f64::from(v.to_f32()) * b_rowsums[col as usize]).abs())
            .sum::<f64>()
            .max(1.0);
        // `within` is false for a NaN sum (NaN fails every comparison), so
        // corruption is flagged rather than slipping through.
        let within = (actual - expected).abs() <= policy.checksum_rel_tol * scale;
        if !within {
            return Err(SputnikError::CorruptOutput {
                kernel: kernel.to_string(),
                reason: format!("checksum mismatch: expected {expected:.6e}, found {actual:.6e}"),
            });
        }
    }
    Ok(())
}

/// The internal fallback kernel: one thread block per output row, 32 lanes
/// streaming the row's nonzeros in order — the simple cusparse-style
/// decomposition. No tuning parameters, no shared-memory staging, minimal
/// resource footprint: if this cannot launch, nothing can. Its name contains
/// no `"sputnik"`, so fault plans filtered to Sputnik kernels spare it, and
/// it does not implement `poison_output`, modeling a conservatively
/// ECC-checked path.
///
/// Accumulation is f32 in nonzero order per row — the same order as
/// [`reference::spmm`] — so f32 results are bit-identical to the CPU rung.
pub struct FallbackSpmmKernel<'a, T: Scalar> {
    a: &'a CsrMatrix<T>,
    b: &'a Matrix<T>,
    out: SyncUnsafeSlice<'a, T>,
    n: usize,
}

impl<'a, T: Scalar> FallbackSpmmKernel<'a, T> {
    pub fn new(a: &'a CsrMatrix<T>, b: &'a Matrix<T>, out: &'a mut Matrix<T>) -> Self {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        assert_eq!(out.rows(), a.rows());
        assert_eq!(out.cols(), b.cols());
        let n = b.cols();
        Self {
            a,
            b,
            out: SyncUnsafeSlice::new(out.as_mut_slice()),
            n,
        }
    }
}

impl<T: Scalar> Kernel for FallbackSpmmKernel<'_, T> {
    fn name(&self) -> String {
        format!("fallback_spmm_{}", T::TAG)
    }

    fn grid(&self) -> Dim3 {
        Dim3::x((self.a.rows() as u32).max(1))
    }

    fn block_dim(&self) -> Dim3 {
        Dim3::x(32)
    }

    fn regs_per_thread(&self) -> u32 {
        24
    }

    fn buffers(&self) -> Vec<BufferSpec> {
        let nnz = self.a.nnz() as u64;
        let eb = T::BYTES as u64;
        vec![
            BufferSpec {
                id: BUF_A_VALUES,
                name: "a_values",
                footprint_bytes: nnz * eb,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_A_INDICES,
                name: "a_indices",
                footprint_bytes: nnz * 4,
                pattern: AccessPattern::Streaming,
            },
            BufferSpec {
                id: BUF_A_OFFSETS,
                name: "a_row_offsets",
                footprint_bytes: (self.a.rows() as u64 + 1) * 4,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_B,
                name: "b",
                footprint_bytes: (self.a.cols() * self.n) as u64 * eb,
                pattern: AccessPattern::SharedReuse,
            },
            BufferSpec {
                id: BUF_C,
                name: "c",
                footprint_bytes: (self.a.rows() * self.n) as u64 * eb,
                pattern: AccessPattern::Streaming,
            },
        ]
    }

    /// Structural cost signature (see [`Kernel::block_signature`]): one row
    /// per block, so the trace is fixed by the row's nonzero count and the
    /// sector alignment (mod 32) of the row's offset, its output strip, and
    /// each gathered B row. Chunked strip loads advance by multiples of the
    /// sector size, so only the starting alignment class matters.
    fn block_signature(&self, block: Dim3) -> Option<u64> {
        let row = block.x as usize;
        let mut fp = Fingerprint::new();
        if row >= self.a.rows() {
            fp.write_u64(u64::MAX);
            return Some(fp.finish());
        }
        let eb = T::BYTES as u64;
        let n = self.n as u64;
        let offset = self.a.row_offsets()[row] as u64;
        let nnz = self.a.row_len(row);
        fp.write_u64(row as u64 * 4 % 32);
        fp.write_u64(nnz as u64);
        fp.write_u64(offset * eb % 32);
        fp.write_u64(offset * 4 % 32);
        fp.write_u64(row as u64 * n * eb % 32);
        if (n * eb).is_multiple_of(32) {
            fp.write_u64(0);
        } else {
            for &col in &self.a.col_indices()[offset as usize..offset as usize + nnz] {
                fp.write_u64(col as u64 * n * eb % 32);
            }
        }
        Some(fp.finish())
    }

    /// Static facts (see [`gpu_sim::static_check`]): one row per block with
    /// purely scalar chunked loads, so every extent follows from the row
    /// walk — values/indices stay inside `[offset, offset + nnz)`, the
    /// offsets read touches `row * 4 .. row * 4 + 8`, B strips end at
    /// `(col + 1) * n <= cols * n` (validated CSR indices), and the output
    /// strip ends at `(row + 1) * n <= rows * n`. No shared-memory staging
    /// at all, and the block is a single warp.
    fn static_facts(&self) -> StaticFacts {
        let nnz = self.a.nnz() as u64;
        let rows = self.a.rows() as u64;
        let cols = self.a.cols() as u64;
        let n = self.n as u64;
        let eb = T::BYTES as u64;
        StaticFacts {
            bounds: Some(vec![
                BufferBound {
                    slot: BUF_A_VALUES.0,
                    bound: AccessBound::Extent(nnz * eb),
                },
                BufferBound {
                    slot: BUF_A_INDICES.0,
                    bound: AccessBound::Extent(nnz * 4),
                },
                BufferBound {
                    slot: BUF_A_OFFSETS.0,
                    bound: AccessBound::Extent((rows + 1) * 4),
                },
                BufferBound {
                    slot: BUF_B.0,
                    bound: AccessBound::Extent(cols * n * eb),
                },
                BufferBound {
                    slot: BUF_C.0,
                    bound: AccessBound::Extent(rows * n * eb),
                },
            ]),
            alignment: AlignmentFacts::ScalarOnly,
            barrier: BarrierFacts::WarpSynchronous,
            stage: StageBound::Bytes(0),
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockContext) {
        let row = block.x as usize;
        if row >= self.a.rows() {
            return;
        }
        let eb = T::BYTES;
        let n = self.n;
        let offset = self.a.row_offsets()[row] as usize;
        let nnz = self.a.row_len(row);

        // ---- Cost trace: scalar row walk, no staging, no vectorization.
        // Skipped wholesale on cache-hit replays (the cost is discarded).
        if ctx.recording() {
            ctx.misc(4);
            ctx.ld_global(BUF_A_OFFSETS, row as u64 * 4, 2, 1, 4);
            if nnz > 0 {
                let loads = (nnz as u64).div_ceil(32);
                for chunk in 0..loads {
                    let addr = (offset as u64 + chunk * 32) * eb as u64;
                    let lanes = 32.min(nnz as u32 - (chunk * 32) as u32);
                    ctx.ld_global(BUF_A_VALUES, addr, lanes, 1, eb);
                    ctx.ld_global(BUF_A_INDICES, (offset as u64 + chunk * 32) * 4, lanes, 1, 4);
                }
                // One full B-row sweep per nonzero, strip-mined over 32 lanes.
                let strips_per_row = (n as u64).div_ceil(32);
                for &col in &self.a.col_indices()[offset..offset + nnz] {
                    for s in 0..strips_per_row {
                        let addr = (col as u64 * n as u64 + s * 32) * eb as u64;
                        let lanes = 32.min(n as u32 - (s * 32) as u32);
                        ctx.ld_global(BUF_B, addr, lanes, 1, eb);
                    }
                    ctx.cost.fma_instrs += strips_per_row;
                    ctx.misc(2);
                }
                ctx.cost.flops += 2 * (nnz * n) as u64;
            }
            let strips_per_row = (n as u64).div_ceil(32);
            for s in 0..strips_per_row {
                let addr = (row as u64 * n as u64 + s * 32) * eb as u64;
                let lanes = 32.min(n as u32 - (s * 32) as u32);
                ctx.st_global(BUF_C, addr, lanes, 1, eb);
            }
        }

        // ---- Functional: in-order accumulation matching reference::spmm
        // (same lanes helper, so outputs stay bit-identical to it).
        if ctx.functional() {
            let values = self.a.values();
            let indices = self.a.col_indices();
            let bdata = self.b.as_slice();
            let mut acc = ctx.scratch_f32(n);
            gpu_sim::lanes::fma_accumulate(
                &mut acc,
                (offset..offset + nnz)
                    .map(|pos| (values[pos].to_f32(), &bdata[indices[pos] as usize * n..])),
                |bv| bv.to_f32(),
            );
            for (x, &v) in acc.iter().enumerate() {
                unsafe { self.out.write(row * n + x, T::from_f32(v)) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen;

    #[test]
    fn fallback_kernel_matches_reference_bitwise() {
        let a = gen::uniform(40, 64, 0.7, 21);
        let b = Matrix::<f32>::random(64, 48, 22);
        let gpu = Gpu::v100();
        let mut out = Matrix::<f32>::zeros(40, 48);
        let kernel = FallbackSpmmKernel::new(&a, &b, &mut out);
        let stats = gpu.try_launch(&kernel).expect("fallback launches");
        assert!(stats.time_us > 0.0);
        assert!(
            !stats.kernel.contains("sputnik"),
            "name must not match sputnik filters"
        );
        let expect = reference::spmm(&a, &b);
        assert_eq!(
            out.as_slice(),
            expect.as_slice(),
            "bit-identical to the reference"
        );
    }

    #[test]
    fn clean_dispatch_serves_from_sputnik_rung() {
        let a = gen::uniform(32, 64, 0.8, 23);
        let b = Matrix::<f32>::random(64, 32, 24);
        let gpu = Gpu::v100();
        let (out, report) = spmm(
            &gpu,
            &a,
            &b,
            SpmmConfig::default(),
            &DispatchPolicy::default(),
        )
        .unwrap();
        assert!(report.clean());
        assert_eq!(report.served_by, Rung::Sputnik);
        assert!(report.stats.is_some());
        assert_eq!(report.backoff_us, 0.0);
        let expect = reference::spmm(&a, &b);
        assert!(out.max_abs_diff(&expect) < 1e-3);
    }

    #[test]
    fn shape_mismatch_is_not_recoverable() {
        let a = gen::uniform(8, 16, 0.5, 25);
        let b = Matrix::<f32>::random(24, 8, 26);
        let gpu = Gpu::v100();
        let err = spmm(
            &gpu,
            &a,
            &b,
            SpmmConfig::default(),
            &DispatchPolicy::default(),
        )
        .expect_err("shapes disagree");
        assert!(matches!(err, SputnikError::ShapeMismatch { .. }));
    }

    #[test]
    fn non_finite_operand_is_rejected_up_front() {
        let a = gen::uniform(8, 16, 0.5, 27);
        let mut b = Matrix::<f32>::random(16, 8, 28);
        b.set(3, 3, f32::NAN);
        let gpu = Gpu::v100();
        let err = spmm(
            &gpu,
            &a,
            &b,
            SpmmConfig::default(),
            &DispatchPolicy::default(),
        )
        .expect_err("NaN operand");
        assert!(matches!(
            err,
            SputnikError::NonFiniteOperand { operand: "b", .. }
        ));
    }

    #[test]
    fn illegal_config_degrades_to_heuristic() {
        let a = gen::uniform(16, 32, 0.6, 29);
        let b = Matrix::<f32>::random(32, 16, 30);
        let gpu = Gpu::v100();
        // vector_width 3 is illegal; dispatch must fall through to the
        // heuristic rung rather than erroring.
        let bad = SpmmConfig {
            vector_width: 3,
            ..SpmmConfig::default()
        };
        let (out, report) = spmm(&gpu, &a, &b, bad, &DispatchPolicy::default()).unwrap();
        assert_eq!(report.served_by, Rung::Heuristic);
        // Deterministic failure: exactly one attempt burned on the bad rung.
        assert_eq!(report.attempts.len(), 1);
        assert!(matches!(
            report.attempts[0].error,
            SputnikError::IllegalConfig { .. }
        ));
        let expect = reference::spmm(&a, &b);
        assert!(out.max_abs_diff(&expect) < 1e-3);
    }

    #[test]
    fn degradation_stats_aggregate() {
        let mut stats = DegradationStats::default();
        let a = gen::uniform(16, 32, 0.6, 31);
        let b = Matrix::<f32>::random(32, 16, 32);
        let gpu = Gpu::v100();
        for _ in 0..3 {
            let (_, report) = spmm(
                &gpu,
                &a,
                &b,
                SpmmConfig::default(),
                &DispatchPolicy::default(),
            )
            .unwrap();
            stats.record(&report);
        }
        assert_eq!(stats.calls, 3);
        assert_eq!(stats.served[Rung::Sputnik as usize], 3);
        assert_eq!(stats.clean_fraction(), 1.0);
    }

    #[test]
    fn cached_dispatch_replays_outputs_and_stats() {
        let a = gen::uniform(32, 64, 0.8, 61);
        let b = Matrix::<f32>::random(64, 32, 62);
        let gpu = Gpu::v100();
        let cache = LaunchCache::new();
        let policy = DispatchPolicy::default();
        let (cold_out, cold) =
            spmm_cached(&gpu, &cache, &a, &b, SpmmConfig::default(), &policy).unwrap();
        assert_eq!(cache.hits(), 0);
        let (warm_out, warm) =
            spmm_cached(&gpu, &cache, &a, &b, SpmmConfig::default(), &policy).unwrap();
        assert!(cache.hits() >= 1, "second dispatch must hit the cache");
        assert!(warm.clean());
        // The replayed launch recomputes real outputs and returns the
        // memoized stats bit-for-bit.
        assert_eq!(cold_out.as_slice(), warm_out.as_slice());
        assert_eq!(cold.stats, warm.stats);
        // The guards saw a real output: corrupt inputs would still fail.
        let (plain_out, plain) = spmm(&gpu, &a, &b, SpmmConfig::default(), &policy).unwrap();
        assert_eq!(plain_out.as_slice(), warm_out.as_slice());
        assert_eq!(plain.stats, warm.stats);
    }

    #[test]
    fn fallback_dedup_profile_is_bit_identical() {
        let a = gen::with_cov(100, 76, 0.8, 1.0, 63);
        let b = Matrix::<f32>::random(76, 40, 64);
        let fast = {
            let mut out = Matrix::<f32>::zeros(100, 40);
            let kernel = FallbackSpmmKernel::new(&a, &b, &mut out);
            Gpu::v100().profile(&kernel)
        };
        let brute = {
            let mut out = Matrix::<f32>::zeros(100, 40);
            let kernel = FallbackSpmmKernel::new(&a, &b, &mut out);
            Gpu::v100().with_block_dedup(false).profile(&kernel)
        };
        assert_eq!(fast, brute);
    }

    #[test]
    fn sanitize_passes_clean_spmm_and_still_computes() {
        let a = gen::uniform(48, 64, 0.7, 41);
        let b = Matrix::<f32>::random(64, 32, 42);
        let gpu = Gpu::v100();
        let cfg = SpmmConfig::heuristic::<f32>(32);
        let (out, stats, report) = sanitize(&gpu, &a, &b, cfg).unwrap();
        assert_eq!(report.violation_count, 0, "{report}");
        assert!(stats.time_us > 0.0);
        let expect = reference::spmm(&a, &b);
        assert!(out.max_abs_diff(&expect) < 1e-3);
    }

    #[test]
    fn sanitize_rejects_shape_mismatch() {
        let a = gen::uniform(16, 32, 0.6, 43);
        let b = Matrix::<f32>::random(48, 16, 44); // inner dim 32 != 48
        let gpu = Gpu::v100();
        let err = sanitize(&gpu, &a, &b, SpmmConfig::default()).unwrap_err();
        assert!(matches!(err, SputnikError::ShapeMismatch { .. }));
    }
}
