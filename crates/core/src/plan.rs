//! Launch-plan IR and fusion planner for the sparse-attention pipeline.
//!
//! The attention forward pass is a chain of launches over one shared CSR
//! topology: SDDMM scores, a logit scale, the sparse softmax, and the
//! context SpMM. This module represents that chain as data ([`PlanOp`]),
//! lets the [`FusionPlanner`] merge adjacent ops into the fused
//! [`SddmmSoftmaxSpmmKernel`] when the merge is provably legal, and falls
//! back to the bit-identical three-launch pipeline otherwise.
//!
//! **Legality rule.** A merge is legal when the fused kernel's declared
//! [`StaticFacts`](gpu_sim::StaticFacts) survive the static auditor on the
//! target device — in particular the per-row staging footprint
//! ([`gpu_sim::fused::staging_bytes`]: the scores row plus one index strip)
//! must fit the device's shared-memory capacity. The planner audits a
//! cost-only probe of the candidate kernel and fuses only on a
//! refutation-free audit, so an oversized topology takes the unfused path
//! without ever building a refutable launch.
//!
//! **Bit-exactness.** The fused kernel's functional body replays the exact
//! per-element `mul_add` chains of the three separate kernels (see
//! `gpu_sim::fused`), so the planner's decision is invisible to the
//! numbers: `fusion_equivalence` pins bitwise equality either way.
//!
//! Fused launches flow through the full static-audit → sanitizer →
//! [`LaunchCache`] funnel. The cache key gains a plan-shape component: the
//! op chain and stage tiles are baked into the kernel name, and the
//! fingerprint mixes the mask topology with the problem shape, the scale
//! bits, and the plan tag.

use crate::config::{SddmmConfig, SpmmConfig};
use crate::error::SputnikError;
use crate::sddmm::{mask_fingerprint, sddmm_profile, sddmm_profile_cached, try_sddmm};
use crate::softmax::{sparse_softmax_scaled, sparse_softmax_scaled_profile};
use crate::spmm::{require_finite, spmm_profile, spmm_profile_cached, try_spmm};
use crate::tune::AutoTuner;
use gpu_sim::{trace, Gpu, Kernel, LaunchCache, SanitizerReport, SddmmSoftmaxSpmmKernel, Verdict};
use sparse::{CsrMatrix, Matrix};

/// One node of the launch-plan IR: an operation over the shared mask
/// topology, in pipeline order.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// Sampled dense-dense matmul producing the scores at the mask's
    /// nonzero positions.
    Sddmm { cfg: SddmmConfig },
    /// Pointwise scale of the current intermediate (attention's
    /// `1/sqrt(d)`).
    Scale { factor: f32 },
    /// Row-wise softmax over the nonzero values.
    SparseSoftmax,
    /// Sparse-matrix × dense-matrix context product.
    Spmm { cfg: SpmmConfig },
}

/// Configs shared by the functional and profile attention paths — the one
/// place both consult, so they can never diverge (previously the profile
/// path rebuilt heuristics while the functional path could hit the
/// [`AutoTuner`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttentionConfigs {
    pub sddmm: SddmmConfig,
    pub spmm: SpmmConfig,
}

/// Select the attention pipeline's kernel configs. With a tuner, the SpMM
/// config comes from the [`AutoTuner`] (through its persistence/memo path,
/// and through the [`LaunchCache`] when one is supplied); otherwise the
/// shape heuristics. Both `sparse_attention_fused` and its profile twin
/// call this — pinned by `profile_and_functional_pick_same_configs`.
pub fn attention_configs(
    gpu: &Gpu,
    cache: Option<&LaunchCache>,
    tuner: Option<&mut AutoTuner>,
    mask: &CsrMatrix<f32>,
    k: usize,
    n: usize,
) -> AttentionConfigs {
    let sddmm = SddmmConfig::heuristic::<f32>(k);
    let spmm = match tuner {
        Some(t) => match cache {
            Some(c) => t.tune_cached(gpu, c, mask, n).config,
            None => t.tune(gpu, mask, n).config,
        },
        None => SpmmConfig::heuristic::<f32>(n),
    };
    AttentionConfigs { sddmm, spmm }
}

/// The planner's verdict for one op chain on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionDecision {
    /// Whether the chain collapses to the fused kernel.
    pub fused: bool,
    /// The fused kernel's per-row staging footprint (scores row + index
    /// strip), fused or not.
    pub staging_bytes: u64,
    /// The device's per-block shared-memory capacity the footprint was
    /// checked against.
    pub smem_capacity: u32,
    /// Why the decision came out this way (audit detail on refusal).
    pub reason: String,
    /// Plan-shape tag baked into the fused launch name — the cache-key
    /// component distinguishing plan shapes.
    pub plan_tag: String,
}

/// Greedy fusion planner over [`PlanOp`] chains.
pub struct FusionPlanner;

/// The canonical fusable window: SDDMM, optional scale folded into the
/// softmax, softmax, SpMM.
struct Window {
    sddmm: SddmmConfig,
    spmm: SpmmConfig,
    scale: f32,
}

fn fusable_window(ops: &[PlanOp]) -> Option<Window> {
    match ops {
        [PlanOp::Sddmm { cfg: sd }, PlanOp::Scale { factor }, PlanOp::SparseSoftmax, PlanOp::Spmm { cfg: sp }] => {
            Some(Window {
                sddmm: *sd,
                spmm: *sp,
                scale: *factor,
            })
        }
        [PlanOp::Sddmm { cfg: sd }, PlanOp::SparseSoftmax, PlanOp::Spmm { cfg: sp }] => {
            Some(Window {
                sddmm: *sd,
                spmm: *sp,
                scale: 1.0,
            })
        }
        _ => None,
    }
}

/// The plan-shape tag for a fusable window: stage tiles + scale presence.
fn plan_tag(w: &Window) -> String {
    format!("s{}x{}", w.sddmm.block_items_x, w.spmm.block_items_x)
}

impl FusionPlanner {
    /// Decide whether `ops` (in pipeline order over `mask`) fuse on `gpu`.
    ///
    /// The greedy merge folds a `Scale` into the adjacent softmax
    /// unconditionally (it is a pointwise read transform), then merges the
    /// `[Sddmm, SparseSoftmax, Spmm]` window into the fused kernel iff the
    /// static audit of a cost-only probe proves every check class — which
    /// on a single-warp block reduces to the staging footprint fitting the
    /// device's shared memory. Anything else stays unfused.
    pub fn plan(
        gpu: &Gpu,
        ops: &[PlanOp],
        mask: &CsrMatrix<f32>,
        k: usize,
        n: usize,
    ) -> FusionDecision {
        let smem_capacity = gpu.device().smem_per_block_max;
        let Some(w) = fusable_window(ops) else {
            return FusionDecision {
                fused: false,
                staging_bytes: 0,
                smem_capacity,
                reason: "op chain is not the SDDMM/softmax/SpMM window".into(),
                plan_tag: String::new(),
            };
        };
        let tag = plan_tag(&w);
        let staging =
            gpu_sim::fused::staging_bytes(mask.max_row_len(), w.sddmm.block_items_x as usize);
        let probe = SddmmSoftmaxSpmmKernel::<f32>::for_profile(
            mask,
            k,
            n,
            w.scale,
            w.sddmm.block_items_x as usize,
            w.spmm.block_items_x as usize,
            tag.clone(),
        );
        let audit = gpu.audit(&probe);
        match audit
            .findings
            .iter()
            .find(|f| f.verdict == Verdict::Refuted)
        {
            Some(f) => FusionDecision {
                fused: false,
                staging_bytes: staging,
                smem_capacity,
                reason: format!("audit refuted {}: {}", f.class.name(), f.detail),
                plan_tag: tag,
            },
            None => FusionDecision {
                fused: true,
                staging_bytes: staging,
                smem_capacity,
                reason: format!("staging {staging} B fits {smem_capacity} B shared memory"),
                plan_tag: tag,
            },
        }
    }
}

/// Cache-key fingerprint for a fused attention launch: mask topology,
/// problem shape, scale bits, and the plan shape. (The plan tag is also in
/// the kernel name; folding it here keeps the key honest even if two plan
/// shapes ever shared a name.)
fn plan_fingerprint(mask: &CsrMatrix<f32>, k: usize, n: usize, scale: f32, tag: &str) -> u64 {
    let mut fp = gpu_sim::Fingerprint::new();
    fp.write_u64(mask_fingerprint(mask, k));
    fp.write_u64(n as u64);
    fp.write_u64(scale.to_bits() as u64);
    for b in tag.as_bytes() {
        fp.write_u64(*b as u64);
    }
    fp.finish()
}

/// Timing of one planned attention run: either one fused launch
/// (`fused_us`) or the three-launch breakdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct FusedAttentionTime {
    pub fused: bool,
    pub scores_us: f64,
    pub softmax_us: f64,
    pub context_us: f64,
    pub fused_us: f64,
    /// Simulated launches issued (1 fused, 3 unfused).
    pub launches: usize,
    /// Launches served from the [`LaunchCache`].
    pub cache_hits: usize,
}

impl FusedAttentionTime {
    pub fn total_us(&self) -> f64 {
        self.scores_us + self.softmax_us + self.context_us + self.fused_us
    }
}

/// The result of a planned (fused-when-legal) attention run.
#[derive(Debug)]
pub struct FusedAttention {
    /// The `rows x n` context, bit-identical fused or unfused.
    pub context: Matrix<f32>,
    pub time: FusedAttentionTime,
    pub decision: FusionDecision,
    pub configs: AttentionConfigs,
    /// The sanitizer report of the fused launch (`None` on the unfused
    /// path and on cache-miss-free replays of an unsanitized GPU).
    pub report: Option<SanitizerReport>,
}

/// Planned sparse attention: plan the `[Sddmm, Scale, SparseSoftmax,
/// Spmm]` chain, launch the fused kernel through the static-audit →
/// sanitizer → [`LaunchCache`] funnel when the planner proves the merge,
/// and fall back to the three-launch pipeline (scale folded into the
/// softmax kernel) otherwise. `q` is `rows x k`, `kmat` is `cols x k`
/// (the SDDMM's transposed-RHS form), `v` is `cols x n`.
#[allow(clippy::too_many_arguments)]
pub fn try_sparse_attention_fused(
    gpu: &Gpu,
    q: &Matrix<f32>,
    kmat: &Matrix<f32>,
    v: &Matrix<f32>,
    mask: &CsrMatrix<f32>,
    scale: f32,
    cache: Option<&LaunchCache>,
    tuner: Option<&mut AutoTuner>,
) -> Result<FusedAttention, SputnikError> {
    check_shapes(q, kmat, v, mask)?;
    require_finite("q", q.as_slice())?;
    require_finite("k", kmat.as_slice())?;
    require_finite("v", v.as_slice())?;
    let (d, n) = (q.cols(), v.cols());
    let configs = attention_configs(gpu, cache, tuner, mask, d, n);
    let ops = plan_ops(&configs, scale);
    let decision = FusionPlanner::plan(gpu, &ops, mask, d, n);

    if decision.fused {
        let mut context = Matrix::<f32>::zeros(mask.rows(), n);
        let (stats, report, hit) = {
            let kernel = SddmmSoftmaxSpmmKernel::new(
                q,
                kmat,
                v,
                mask,
                context.as_mut_slice(),
                scale,
                configs.sddmm.block_items_x as usize,
                configs.spmm.block_items_x as usize,
                decision.plan_tag.clone(),
            );
            crate::dispatch::audit_launch(gpu, &kernel)?;
            let track = gpu.device().name.clone();
            let traced = trace::enabled();
            if traced {
                trace::begin_span("fusion", &track, &kernel.name());
            }
            let result = match cache {
                Some(c) => gpu.sanitize_cached(
                    c,
                    plan_fingerprint(mask, d, n, scale, &decision.plan_tag),
                    &kernel,
                ),
                None => gpu.sanitize(&kernel).map(|(s, r)| (s, r, false)),
            };
            if traced {
                trace::end_span(&track);
            }
            result.map_err(SputnikError::from)?
        };
        Ok(FusedAttention {
            context,
            time: FusedAttentionTime {
                fused: true,
                fused_us: stats.time_us,
                launches: 1,
                cache_hits: usize::from(hit),
                ..Default::default()
            },
            decision,
            configs,
            report: Some(report),
        })
    } else {
        let (context, time) = sparse_attention_unfused(gpu, q, kmat, v, mask, scale, &configs)?;
        Ok(FusedAttention {
            context,
            time,
            decision,
            configs,
            report: None,
        })
    }
}

/// Panicking wrapper over [`try_sparse_attention_fused`].
#[allow(clippy::too_many_arguments)]
pub fn sparse_attention_fused(
    gpu: &Gpu,
    q: &Matrix<f32>,
    kmat: &Matrix<f32>,
    v: &Matrix<f32>,
    mask: &CsrMatrix<f32>,
    scale: f32,
    cache: Option<&LaunchCache>,
    tuner: Option<&mut AutoTuner>,
) -> FusedAttention {
    try_sparse_attention_fused(gpu, q, kmat, v, mask, scale, cache, tuner)
        .unwrap_or_else(|e| panic!("sparse_attention_fused: {e}"))
}

/// The three-launch reference pipeline with the scale folded into the
/// softmax kernel: SDDMM → scaled softmax → SpMM. This is both the
/// planner's fallback and the bit-exactness reference the fused kernel is
/// pinned against.
pub fn sparse_attention_unfused(
    gpu: &Gpu,
    q: &Matrix<f32>,
    kmat: &Matrix<f32>,
    v: &Matrix<f32>,
    mask: &CsrMatrix<f32>,
    scale: f32,
    configs: &AttentionConfigs,
) -> Result<(Matrix<f32>, FusedAttentionTime), SputnikError> {
    check_shapes(q, kmat, v, mask)?;
    let (scores, s1) = try_sddmm(gpu, q, kmat, mask, configs.sddmm)?;
    let (probs, s2) = sparse_softmax_scaled(gpu, &scores, scale);
    let (context, s3) = try_spmm(gpu, &probs, v, configs.spmm)?;
    Ok((
        context,
        FusedAttentionTime {
            fused: false,
            scores_us: s1.time_us,
            softmax_us: s2.time_us,
            context_us: s3.time_us,
            launches: 3,
            ..Default::default()
        },
    ))
}

/// Cost-only twin of [`try_sparse_attention_fused`]: same config
/// selection, same planner, same audit gate and [`LaunchCache`], no
/// functional work.
pub fn sparse_attention_fused_profile(
    gpu: &Gpu,
    mask: &CsrMatrix<f32>,
    k: usize,
    n: usize,
    scale: f32,
    cache: Option<&LaunchCache>,
    tuner: Option<&mut AutoTuner>,
) -> Result<(FusedAttentionTime, FusionDecision, AttentionConfigs), SputnikError> {
    let configs = attention_configs(gpu, cache, tuner, mask, k, n);
    let ops = plan_ops(&configs, scale);
    let decision = FusionPlanner::plan(gpu, &ops, mask, k, n);

    if decision.fused {
        let kernel = SddmmSoftmaxSpmmKernel::<f32>::for_profile(
            mask,
            k,
            n,
            scale,
            configs.sddmm.block_items_x as usize,
            configs.spmm.block_items_x as usize,
            decision.plan_tag.clone(),
        );
        crate::dispatch::audit_launch(gpu, &kernel)?;
        let track = gpu.device().name.clone();
        let traced = trace::enabled();
        if traced {
            trace::begin_span("fusion", &track, &kernel.name());
        }
        let result = match cache {
            Some(c) => gpu.try_profile_cached(
                c,
                plan_fingerprint(mask, k, n, scale, &decision.plan_tag),
                &kernel,
            ),
            None => gpu.try_profile(&kernel).map(|s| (s, false)),
        };
        if traced {
            trace::end_span(&track);
        }
        let (stats, hit) = result.map_err(SputnikError::from)?;
        Ok((
            FusedAttentionTime {
                fused: true,
                fused_us: stats.time_us,
                launches: 1,
                cache_hits: usize::from(hit),
                ..Default::default()
            },
            decision,
            configs,
        ))
    } else {
        let ((s1, h1), s2, (s3, h3)) = match cache {
            Some(c) => (
                sddmm_profile_cached(gpu, c, mask, k, configs.sddmm),
                sparse_softmax_scaled_profile(gpu, mask, scale),
                spmm_profile_cached(gpu, c, mask, mask.cols(), n, configs.spmm),
            ),
            None => (
                (sddmm_profile(gpu, mask, k, configs.sddmm), false),
                sparse_softmax_scaled_profile(gpu, mask, scale),
                (spmm_profile(gpu, mask, mask.cols(), n, configs.spmm), false),
            ),
        };
        Ok((
            FusedAttentionTime {
                fused: false,
                scores_us: s1.time_us,
                softmax_us: s2.time_us,
                context_us: s3.time_us,
                launches: 3,
                cache_hits: usize::from(h1) + usize::from(h3),
                ..Default::default()
            },
            decision,
            configs,
        ))
    }
}

/// The attention pipeline's canonical op chain.
fn plan_ops(configs: &AttentionConfigs, scale: f32) -> [PlanOp; 4] {
    [
        PlanOp::Sddmm { cfg: configs.sddmm },
        PlanOp::Scale { factor: scale },
        PlanOp::SparseSoftmax,
        PlanOp::Spmm { cfg: configs.spmm },
    ]
}

fn check_shapes(
    q: &Matrix<f32>,
    kmat: &Matrix<f32>,
    v: &Matrix<f32>,
    mask: &CsrMatrix<f32>,
) -> Result<(), SputnikError> {
    let ok = q.rows() == mask.rows()
        && kmat.rows() == mask.cols()
        && q.cols() == kmat.cols()
        && v.rows() == mask.cols();
    if ok {
        Ok(())
    } else {
        Err(SputnikError::ShapeMismatch {
            context: "sparse_attention_fused",
            expected: format!(
                "q {}x{{k}}, k {}x{{k}}, v {}x{{n}} for mask {}x{}",
                mask.rows(),
                mask.cols(),
                mask.cols(),
                mask.rows(),
                mask.cols()
            ),
            found: format!(
                "q {}x{}, k {}x{}, v {}x{}",
                q.rows(),
                q.cols(),
                kmat.rows(),
                kmat.cols(),
                v.rows(),
                v.cols()
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen;

    fn qkv(seq: usize, ctx: usize, d: usize, seed: u64) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
        (
            Matrix::<f32>::random(seq, d, seed),
            Matrix::<f32>::random(ctx, d, seed + 1),
            Matrix::<f32>::random(ctx, d, seed + 2),
        )
    }

    #[test]
    fn planner_fuses_small_topology_and_matches_unfused_bitwise() {
        let mask = gen::attention_mask(96, 8, 0.85, 900);
        let (q, k, v) = qkv(96, 96, 16, 901);
        let scale = 1.0 / (16f32).sqrt();
        let gpu = Gpu::v100();
        let run = sparse_attention_fused(&gpu, &q, &k, &v, &mask, scale, None, None);
        assert!(
            run.decision.fused,
            "small mask must fuse: {}",
            run.decision.reason
        );
        assert_eq!(run.time.launches, 1);
        let (want, _) =
            sparse_attention_unfused(&gpu, &q, &k, &v, &mask, scale, &run.configs).unwrap();
        assert_eq!(
            run.context.as_slice(),
            want.as_slice(),
            "fusion changed bits"
        );
        let report = run.report.unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn oversized_staging_takes_unfused_path() {
        // One row with ~30k nonzeros: staging ~120 KB exceeds the V100's
        // 96 KiB shared memory, so the planner must refuse the merge.
        let mask = gen::uniform(4, 32 * 1024, 0.1, 902);
        assert!(
            gpu_sim::fused::staging_bytes(mask.max_row_len(), 32)
                > Gpu::v100().device().smem_per_block_max as u64,
            "probe topology must actually be oversized"
        );
        let (q, k, v) = qkv(4, 32 * 1024, 8, 903);
        let gpu = Gpu::v100();
        let run = sparse_attention_fused(&gpu, &q, &k, &v, &mask, 0.5, None, None);
        assert!(!run.decision.fused);
        assert!(
            run.decision.reason.contains("shared_capacity"),
            "{}",
            run.decision.reason
        );
        assert_eq!(run.time.launches, 3);
        let (want, _) =
            sparse_attention_unfused(&gpu, &q, &k, &v, &mask, 0.5, &run.configs).unwrap();
        assert_eq!(run.context.as_slice(), want.as_slice());
    }

    #[test]
    fn profile_and_functional_pick_same_configs() {
        // A problem class where the tuner's winner may differ from the
        // heuristic: both paths must consult the same tuner and agree.
        let mask = gen::uniform(128, 128, 0.9, 904);
        let (q, k, v) = qkv(128, 128, 32, 905);
        let gpu = Gpu::v100();
        let cache = LaunchCache::default();
        let mut tuner = AutoTuner::default();
        let run = sparse_attention_fused(
            &gpu,
            &q,
            &k,
            &v,
            &mask,
            0.25,
            Some(&cache),
            Some(&mut tuner),
        );
        let (_, _, profile_cfgs) = sparse_attention_fused_profile(
            &gpu,
            &mask,
            32,
            32,
            0.25,
            Some(&cache),
            Some(&mut tuner),
        )
        .unwrap();
        assert_eq!(
            run.configs, profile_cfgs,
            "functional and profile configs diverged"
        );
        // And the no-tuner heuristic path agrees with itself too.
        let heuristic = attention_configs(&gpu, None, None, &mask, 32, 32);
        let (_, _, heuristic_profile) =
            sparse_attention_fused_profile(&gpu, &mask, 32, 32, 0.25, None, None).unwrap();
        assert_eq!(heuristic, heuristic_profile);
    }

    #[test]
    fn fused_replay_hits_cache() {
        let mask = gen::attention_mask(64, 8, 0.8, 906);
        let (q, k, v) = qkv(64, 64, 16, 907);
        let gpu = Gpu::v100();
        let cache = LaunchCache::default();
        let first = sparse_attention_fused(&gpu, &q, &k, &v, &mask, 0.25, Some(&cache), None);
        assert_eq!(first.time.cache_hits, 0);
        let second = sparse_attention_fused(&gpu, &q, &k, &v, &mask, 0.25, Some(&cache), None);
        assert_eq!(
            second.time.cache_hits, 1,
            "replay must be served from the cache"
        );
        assert_eq!(first.context.as_slice(), second.context.as_slice());
        // A different plan shape (different scale) must not alias the key.
        let third = sparse_attention_fused(&gpu, &q, &k, &v, &mask, 0.5, Some(&cache), None);
        assert_eq!(third.time.cache_hits, 0, "scale is part of the cache key");
    }

    #[test]
    fn non_canonical_chain_stays_unfused() {
        let mask = gen::attention_mask(32, 4, 0.8, 908);
        let gpu = Gpu::v100();
        let decision = FusionPlanner::plan(
            &gpu,
            &[
                PlanOp::SparseSoftmax,
                PlanOp::Spmm {
                    cfg: SpmmConfig::heuristic::<f32>(16),
                },
            ],
            &mask,
            16,
            16,
        );
        assert!(!decision.fused);
    }
}
