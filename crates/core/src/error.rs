//! Typed errors for the Sputnik kernel stack.
//!
//! Every way a kernel call can fail — bad shapes, illegal configurations,
//! resource exhaustion, corrupt inputs, injected device faults, detected
//! output corruption — maps to a [`SputnikError`] variant, so callers can
//! match on the failure class and recover (see [`crate::dispatch`]) instead
//! of unwinding through a panic.

use gpu_sim::{DeviceFault, FleetError, LaunchError};
use sparse::CsrError;
use std::fmt;

/// The error type for the fallible Sputnik APIs ([`crate::try_spmm`],
/// [`crate::try_sddmm`], [`crate::dispatch`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SputnikError {
    /// Operand dimensions do not agree.
    ShapeMismatch {
        expected: String,
        found: String,
        context: &'static str,
    },
    /// The kernel configuration is illegal for this problem (bad tile
    /// shapes, subwarp wider than a warp, unsupported layout, ...).
    IllegalConfig { reason: String },
    /// The configuration's shared-memory request exceeds what the device
    /// allows for a single block.
    SmemOverBudget {
        kernel: String,
        requested: u32,
        budget: u32,
    },
    /// No block of the configured kernel can be resident on an SM: the
    /// launch can never execute.
    OccupancyZero { kernel: String },
    /// An operand contains NaN or Inf; kernel results would be meaningless
    /// and output-corruption detection impossible.
    NonFiniteOperand { operand: &'static str, index: usize },
    /// The sparse operand violates CSR invariants.
    CorruptCsr(CsrError),
    /// The device reported a fault during the launch (real or injected).
    DeviceFault(DeviceFault),
    /// A launch completed but its output failed a detection guard
    /// (non-finite values or a checksum mismatch).
    CorruptOutput { kernel: String, reason: String },
    /// The static launch auditor (`gpu_sim::static_check`) refuted a safety
    /// property of the launch descriptor — the launch was rejected before a
    /// single block was simulated.
    StaticallyRefuted {
        kernel: String,
        /// The refuted check class (`bounds`, `alignment`, ...).
        class: String,
        detail: String,
    },
    /// A sharded launch's fleet stream graph could not be resolved (wait
    /// cycle or wait on a never-recorded event).
    FleetStall(FleetError),
}

impl fmt::Display for SputnikError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SputnikError::ShapeMismatch {
                expected,
                found,
                context,
            } => {
                write!(
                    f,
                    "shape mismatch in {context}: expected {expected}, found {found}"
                )
            }
            SputnikError::IllegalConfig { reason } => write!(f, "illegal configuration: {reason}"),
            SputnikError::SmemOverBudget {
                kernel,
                requested,
                budget,
            } => write!(
                f,
                "kernel {kernel} requests {requested} B shared memory; device max is {budget}"
            ),
            SputnikError::OccupancyZero { kernel } => {
                write!(
                    f,
                    "kernel {kernel} achieves zero occupancy: no block fits on an SM"
                )
            }
            SputnikError::NonFiniteOperand { operand, index } => {
                write!(
                    f,
                    "operand {operand} contains a non-finite value at index {index}"
                )
            }
            SputnikError::CorruptCsr(e) => write!(f, "corrupt CSR operand: {e}"),
            SputnikError::DeviceFault(fault) => write!(f, "device fault: {fault}"),
            SputnikError::CorruptOutput { kernel, reason } => {
                write!(f, "corrupt output from kernel {kernel}: {reason}")
            }
            SputnikError::StaticallyRefuted {
                kernel,
                class,
                detail,
            } => {
                write!(f, "kernel {kernel} statically refuted [{class}]: {detail}")
            }
            SputnikError::FleetStall(e) => write!(f, "fleet stall: {e}"),
        }
    }
}

impl std::error::Error for SputnikError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SputnikError::CorruptCsr(e) => Some(e),
            SputnikError::DeviceFault(e) => Some(e),
            SputnikError::FleetStall(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CsrError> for SputnikError {
    fn from(e: CsrError) -> Self {
        SputnikError::CorruptCsr(e)
    }
}

impl From<DeviceFault> for SputnikError {
    fn from(e: DeviceFault) -> Self {
        SputnikError::DeviceFault(e)
    }
}

impl From<FleetError> for SputnikError {
    fn from(e: FleetError) -> Self {
        SputnikError::FleetStall(e)
    }
}

impl From<LaunchError> for SputnikError {
    fn from(e: LaunchError) -> Self {
        match e {
            LaunchError::SmemOverBudget {
                kernel,
                requested,
                budget,
            } => SputnikError::SmemOverBudget {
                kernel,
                requested,
                budget,
            },
            LaunchError::OccupancyZero { kernel } => SputnikError::OccupancyZero { kernel },
            LaunchError::DeviceFault(fault) => SputnikError::DeviceFault(fault),
        }
    }
}

/// True when retrying the same launch could plausibly succeed: transient
/// device faults are retryable, everything deterministic is not.
pub fn is_transient(err: &SputnikError) -> bool {
    matches!(
        err,
        SputnikError::DeviceFault(_) | SputnikError::CorruptOutput { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::FaultKind;

    #[test]
    fn launch_error_maps_to_matching_variant() {
        let e: SputnikError = LaunchError::OccupancyZero { kernel: "k".into() }.into();
        assert!(matches!(e, SputnikError::OccupancyZero { .. }));
        let e: SputnikError = LaunchError::SmemOverBudget {
            kernel: "k".into(),
            requested: 1 << 20,
            budget: 96 << 10,
        }
        .into();
        assert!(matches!(e, SputnikError::SmemOverBudget { .. }));
    }

    #[test]
    fn transience_classification() {
        let fault = SputnikError::DeviceFault(DeviceFault {
            kind: FaultKind::EccError,
            kernel: "k".into(),
            launch_index: 0,
        });
        assert!(is_transient(&fault));
        assert!(!is_transient(&SputnikError::IllegalConfig {
            reason: "x".into()
        }));
    }

    #[test]
    fn display_is_informative() {
        let e = SputnikError::NonFiniteOperand {
            operand: "b",
            index: 7,
        };
        assert!(format!("{e}").contains("non-finite"));
    }
}
